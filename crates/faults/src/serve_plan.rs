//! The serving-domain fault plan: seeded, deterministic chaos for the
//! online reputation-query path.
//!
//! Unlike the study-time [`crate::FaultPlan`], the serving path has no
//! sim-time axis to schedule over — faults are keyed by *ordinals*
//! instead: the n-th connection admitted to a shard, the k-th frame on a
//! connection, the i-th snapshot offered for hot swap. Every decision is
//! a stateless [`crate::coin`] hash over `(seed, domain tag, ordinals)`,
//! so a chaos run is reproducible whenever its workload shape is: the
//! same seed and the same sequence of connections always injects the
//! same faults, regardless of thread interleaving, and probing a
//! decision never advances any RNG another subsystem could observe.
//!
//! Fault classes (each with its own scale knob on [`ServeFaultConfig`]):
//!
//! * **worker panics** — the shard worker panics while taking up a
//!   connection; the server's supervisor must catch, record and restart;
//! * **worker stalls** — the worker sleeps before servicing a
//!   connection, backing up the admission queue (exercises deadline
//!   shedding);
//! * **per-query latency spikes** — an injected delay before answering
//!   one frame;
//! * **client misbehavior** — slow-loris trickle writes, frames
//!   truncated mid-body, rapid connect/disconnect churn (driven by the
//!   chaos harness's client side);
//! * **snapshot faults at swap time** — the offered snapshot is
//!   corrupted (postings flipped, checksum lying, structurally
//!   truncated) or regresses the generation; validated hot-swap must
//!   reject it and pin the last good snapshot.

use crate::coin;
use ar_simnet::rng::Seed;
use serde::Serialize;
use std::time::Duration;

/// Namespace word mixed into every serving-domain coin so the streams
/// never collide with the study-time plan's coins.
const SERVE_NS: u64 = 0x5345_5256_4511;

const TAG_PANIC: u64 = 1;
const TAG_STALL: u64 = 2;
const TAG_LATENCY: u64 = 3;
const TAG_CLIENT: u64 = 4;
const TAG_SNAPSHOT: u64 = 5;

/// Dial positions for serving-path fault generation. `intensity` is the
/// master knob (0.0 = nothing injected, 1.0 = the full chaos mix); the
/// per-class scales exaggerate or mute one failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeFaultConfig {
    /// Master intensity in `[0, 1]` (values above 1 scale further).
    pub intensity: f64,
    /// Shard-worker panics while accepting a connection.
    pub worker_panic_scale: f64,
    /// Shard-worker stalls (sleep before servicing a connection).
    pub worker_stall_scale: f64,
    /// Hostile client behaviors (slow-loris, truncation, churn).
    pub client_scale: f64,
    /// Corrupted / generation-regressing snapshots offered at swap time.
    pub snapshot_scale: f64,
    /// Injected per-query latency spikes.
    pub latency_scale: f64,
}

impl ServeFaultConfig {
    /// Everything off: every probe on a plan with this config is a no-op.
    pub fn off() -> Self {
        Self::at_intensity(0.0)
    }

    /// All fault classes at their default mix, scaled by one knob.
    pub fn at_intensity(intensity: f64) -> Self {
        ServeFaultConfig {
            intensity,
            worker_panic_scale: 1.0,
            worker_stall_scale: 1.0,
            client_scale: 1.0,
            snapshot_scale: 1.0,
            latency_scale: 1.0,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.intensity <= 0.0
    }
}

/// How the chaos harness's client side should behave for one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ClientMisbehavior {
    /// A well-behaved session: connect, query, read the reply.
    None,
    /// Trickle the request frame out `chunk` bytes at a time with
    /// `delay_ms` between writes (slow-loris).
    SlowLoris { chunk: usize, delay_ms: u64 },
    /// Send the length prefix plus only `keep_permille`/1000 of the
    /// declared body, then drop the connection mid-frame.
    TruncateFrame { keep_permille: u16 },
    /// Open and immediately abandon `connects` connections in a burst.
    ConnectionChurn { connects: u8 },
}

/// How a snapshot offered for hot swap has been damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SnapshotFault {
    /// A posting byte is flipped after the content checksum was taken.
    CorruptPostings,
    /// The stored content checksum itself lies.
    ChecksumMismatch,
    /// An index array is truncated (structural invariant broken).
    StructuralTruncation,
    /// The offered generation is not newer than the serving one.
    GenerationRegression,
}

impl SnapshotFault {
    pub fn name(&self) -> &'static str {
        match self {
            SnapshotFault::CorruptPostings => "corrupt_postings",
            SnapshotFault::ChecksumMismatch => "checksum_mismatch",
            SnapshotFault::StructuralTruncation => "structural_truncation",
            SnapshotFault::GenerationRegression => "generation_regression",
        }
    }
}

/// Expected injection volumes for a workload shape, derived without
/// running anything (pure enumeration of the same coins the live hooks
/// flip). Used by `bench_chaos` to cross-check the recorded chaos log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServePlanSummary {
    pub worker_panics: usize,
    pub worker_stalls: usize,
    pub latency_spikes: usize,
    pub client_misbehaviors: usize,
    pub snapshot_faults: usize,
}

/// The serving-domain plan: a seed plus the dial positions. All state
/// lives in the coins — the plan itself is `Copy` and never mutates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeFaultPlan {
    pub seed: Seed,
    pub config: ServeFaultConfig,
}

impl ServeFaultPlan {
    pub fn new(seed: Seed, intensity: f64) -> Self {
        ServeFaultPlan {
            seed,
            config: ServeFaultConfig::at_intensity(intensity),
        }
    }

    pub fn with_config(seed: Seed, config: ServeFaultConfig) -> Self {
        ServeFaultPlan { seed, config }
    }

    pub fn is_zero(&self) -> bool {
        self.config.is_zero()
    }

    fn unit(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        coin::unit(&[self.seed.0, SERVE_NS, tag, a, b, c])
    }

    /// A deterministic draw in `[lo, hi]` keyed like [`Self::unit`] but on
    /// an independent nonce, so magnitude never correlates with whether
    /// the fault fired.
    fn range(&self, tag: u64, a: u64, b: u64, c: u64, lo: u64, hi: u64) -> u64 {
        let u = coin::unit(&[self.seed.0, SERVE_NS, tag, a, b, c, 0x5eed]);
        lo + ((hi.saturating_sub(lo) + 1) as f64 * u) as u64
    }

    /// Should the shard worker panic while taking up connection `conn`
    /// (the per-shard admission ordinal) on `shard`? At full intensity
    /// roughly 4% of admissions.
    pub fn worker_panic(&self, shard: u64, conn: u64) -> bool {
        let p = self.config.intensity * self.config.worker_panic_scale * 0.04;
        p > 0.0 && self.unit(TAG_PANIC, shard, conn, 0) < p
    }

    /// Should the worker stall before servicing connection `conn`, and
    /// for how long? At full intensity ~6% of admissions stall 5–40 ms.
    pub fn worker_stall(&self, shard: u64, conn: u64) -> Option<Duration> {
        let p = self.config.intensity * self.config.worker_stall_scale * 0.06;
        if p > 0.0 && self.unit(TAG_STALL, shard, conn, 0) < p {
            Some(Duration::from_millis(
                self.range(TAG_STALL, shard, conn, 1, 5, 40),
            ))
        } else {
            None
        }
    }

    /// Injected latency before answering frame `frame` of connection
    /// `conn`. At full intensity ~8% of frames pick up 1–8 ms.
    pub fn query_delay(&self, shard: u64, conn: u64, frame: u64) -> Option<Duration> {
        let p = self.config.intensity * self.config.latency_scale * 0.08;
        if p > 0.0 && self.unit(TAG_LATENCY, shard, conn, frame) < p {
            Some(Duration::from_millis(self.range(
                TAG_LATENCY,
                shard,
                conn,
                frame + 1,
                1,
                8,
            )))
        } else {
            None
        }
    }

    /// How client session `client` should behave on its `op`-th action.
    /// At full intensity ~18% of sessions misbehave, split evenly across
    /// the three hostile shapes.
    pub fn client_misbehavior(&self, client: u64, op: u64) -> ClientMisbehavior {
        let scale = self.config.intensity * self.config.client_scale;
        if scale <= 0.0 {
            return ClientMisbehavior::None;
        }
        let p_each = (scale * 0.06).min(1.0 / 3.0);
        let u = self.unit(TAG_CLIENT, client, op, 0);
        if u < p_each {
            ClientMisbehavior::SlowLoris {
                chunk: self.range(TAG_CLIENT, client, op, 1, 1, 4) as usize,
                delay_ms: self.range(TAG_CLIENT, client, op, 2, 1, 5),
            }
        } else if u < 2.0 * p_each {
            ClientMisbehavior::TruncateFrame {
                keep_permille: self.range(TAG_CLIENT, client, op, 3, 200, 800) as u16,
            }
        } else if u < 3.0 * p_each {
            ClientMisbehavior::ConnectionChurn {
                connects: self.range(TAG_CLIENT, client, op, 4, 2, 6) as u8,
            }
        } else {
            ClientMisbehavior::None
        }
    }

    /// How the `swap`-th snapshot offered to the server is damaged, if at
    /// all. At full intensity ~36% of offers are bad, weighted toward
    /// posting corruption.
    pub fn snapshot_fault(&self, swap: u64) -> Option<SnapshotFault> {
        let scale = self.config.intensity * self.config.snapshot_scale;
        if scale <= 0.0 {
            return None;
        }
        let p_corrupt = (scale * 0.12).min(0.25);
        let p_checksum = (scale * 0.08).min(0.25);
        let p_struct = (scale * 0.06).min(0.25);
        let p_regress = (scale * 0.10).min(0.25);
        let u = self.unit(TAG_SNAPSHOT, swap, 0, 0);
        if u < p_corrupt {
            Some(SnapshotFault::CorruptPostings)
        } else if u < p_corrupt + p_checksum {
            Some(SnapshotFault::ChecksumMismatch)
        } else if u < p_corrupt + p_checksum + p_struct {
            Some(SnapshotFault::StructuralTruncation)
        } else if u < p_corrupt + p_checksum + p_struct + p_regress {
            Some(SnapshotFault::GenerationRegression)
        } else {
            None
        }
    }

    /// Enumerate the coins a workload of this shape would flip and count
    /// the injections. Pure — the live hooks flip exactly these coins, so
    /// a soak's recorded chaos volume must match this preview.
    pub fn summarize(
        &self,
        shards: u64,
        conns_per_shard: u64,
        frames_per_conn: u64,
        clients: u64,
        swaps: u64,
    ) -> ServePlanSummary {
        let mut s = ServePlanSummary {
            worker_panics: 0,
            worker_stalls: 0,
            latency_spikes: 0,
            client_misbehaviors: 0,
            snapshot_faults: 0,
        };
        for shard in 0..shards {
            for conn in 0..conns_per_shard {
                s.worker_panics += usize::from(self.worker_panic(shard, conn));
                s.worker_stalls += usize::from(self.worker_stall(shard, conn).is_some());
                for frame in 0..frames_per_conn {
                    s.latency_spikes += usize::from(self.query_delay(shard, conn, frame).is_some());
                }
            }
        }
        for client in 0..clients {
            s.client_misbehaviors +=
                usize::from(self.client_misbehavior(client, 0) != ClientMisbehavior::None);
        }
        for swap in 0..swaps {
            s.snapshot_faults += usize::from(self.snapshot_fault(swap).is_some());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_injects_nothing() {
        let plan = ServeFaultPlan::new(Seed(7), 0.0);
        assert!(plan.is_zero());
        for shard in 0..4u64 {
            for conn in 0..200u64 {
                assert!(!plan.worker_panic(shard, conn));
                assert!(plan.worker_stall(shard, conn).is_none());
                assert!(plan.query_delay(shard, conn, 0).is_none());
            }
        }
        for client in 0..200u64 {
            assert_eq!(plan.client_misbehavior(client, 0), ClientMisbehavior::None);
        }
        for swap in 0..200u64 {
            assert!(plan.snapshot_fault(swap).is_none());
        }
        let s = plan.summarize(4, 200, 4, 200, 200);
        assert_eq!(
            s,
            ServePlanSummary {
                worker_panics: 0,
                worker_stalls: 0,
                latency_spikes: 0,
                client_misbehaviors: 0,
                snapshot_faults: 0,
            }
        );
    }

    #[test]
    fn probes_are_seed_deterministic() {
        let a = ServeFaultPlan::new(Seed(21), 1.0);
        let b = ServeFaultPlan::new(Seed(21), 1.0);
        let c = ServeFaultPlan::new(Seed(22), 1.0);
        assert_eq!(
            a.summarize(4, 300, 4, 300, 300),
            b.summarize(4, 300, 4, 300, 300)
        );
        assert_ne!(
            a.summarize(4, 300, 4, 300, 300),
            c.summarize(4, 300, 4, 300, 300),
            "seed must matter"
        );
        for conn in 0..50u64 {
            assert_eq!(a.worker_stall(1, conn), b.worker_stall(1, conn));
            assert_eq!(a.client_misbehavior(conn, 0), b.client_misbehavior(conn, 0));
            assert_eq!(a.snapshot_fault(conn), b.snapshot_fault(conn));
        }
    }

    #[test]
    fn full_intensity_schedules_every_class() {
        let plan = ServeFaultPlan::new(Seed(3), 1.0);
        let s = plan.summarize(4, 400, 4, 400, 400);
        assert!(s.worker_panics > 0, "{s:?}");
        assert!(s.worker_stalls > 0, "{s:?}");
        assert!(s.latency_spikes > 0, "{s:?}");
        assert!(s.client_misbehaviors > 0, "{s:?}");
        assert!(s.snapshot_faults > 0, "{s:?}");
        // Every client shape and every snapshot-fault kind appears.
        let mut slow = 0;
        let mut trunc = 0;
        let mut churn = 0;
        for client in 0..2000u64 {
            match plan.client_misbehavior(client, 0) {
                ClientMisbehavior::SlowLoris { chunk, delay_ms } => {
                    assert!((1..=4).contains(&chunk) && (1..=5).contains(&delay_ms));
                    slow += 1;
                }
                ClientMisbehavior::TruncateFrame { keep_permille } => {
                    assert!((200..=800).contains(&keep_permille));
                    trunc += 1;
                }
                ClientMisbehavior::ConnectionChurn { connects } => {
                    assert!((2..=6).contains(&connects));
                    churn += 1;
                }
                ClientMisbehavior::None => {}
            }
        }
        assert!(slow > 0 && trunc > 0 && churn > 0, "{slow}/{trunc}/{churn}");
        let kinds: std::collections::BTreeSet<&'static str> = (0..2000u64)
            .filter_map(|swap| plan.snapshot_fault(swap))
            .map(|f| f.name())
            .collect();
        assert_eq!(kinds.len(), 4, "all snapshot fault kinds drawn: {kinds:?}");
    }

    #[test]
    fn intensity_scales_injection_volume() {
        let lo = ServeFaultPlan::new(Seed(9), 0.25).summarize(2, 500, 4, 500, 500);
        let hi = ServeFaultPlan::new(Seed(9), 1.0).summarize(2, 500, 4, 500, 500);
        assert!(hi.worker_panics >= lo.worker_panics);
        assert!(hi.client_misbehaviors > lo.client_misbehaviors);
        assert!(hi.snapshot_faults > lo.snapshot_faults);
    }

    #[test]
    fn stall_and_delay_magnitudes_are_bounded() {
        let plan = ServeFaultPlan::new(Seed(5), 1.0);
        for conn in 0..500u64 {
            if let Some(d) = plan.worker_stall(0, conn) {
                assert!((5..=40).contains(&(d.as_millis() as u64)), "{d:?}");
            }
            if let Some(d) = plan.query_delay(0, conn, 2) {
                assert!((1..=8).contains(&(d.as_millis() as u64)), "{d:?}");
            }
        }
    }
}
