//! R6 violating fixture: the Relaxed load hides in a helper, but the
//! helper is reachable from an `encode_*` serialization sink through the
//! call graph.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    depth: AtomicU64,
}

impl Stats {
    fn queue_depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn encode_stats_response(&self) -> Vec<u8> {
        let mut out = vec![0u8];
        out.extend_from_slice(&self.queue_depth().to_be_bytes());
        out
    }
}
