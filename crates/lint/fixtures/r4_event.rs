//! R4 fixture — a miniature `event.rs` defining the wire names, now
//! including the telemetry-plane kinds. Never compiled; scanned as text.

pub enum EventKind {
    RetryFired,
    PhaseFailed,
    SloBreach,
    SloRecovered,
    StatsServed,
    TraceSampled,
}

impl EventKind {
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RetryFired => "retry_fired",
            EventKind::PhaseFailed => "phase_failed",
            EventKind::SloBreach => "slo_breach",
            EventKind::SloRecovered => "slo_recovered",
            EventKind::StatsServed => "stats_served",
            EventKind::TraceSampled => "trace_sampled",
        }
    }
}
