//! R4 fixture — a miniature `event.rs` defining two wire names. Never
//! compiled; scanned as text.

pub enum EventKind {
    RetryFired,
    PhaseFailed,
}

impl EventKind {
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RetryFired => "retry_fired",
            EventKind::PhaseFailed => "phase_failed",
        }
    }
}
