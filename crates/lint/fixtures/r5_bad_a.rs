//! R5 violating fixture: two paths take the same pair of guards in
//! opposite orders — the classic ABBA deadlock under load.

use parking_lot::Mutex;

pub struct Telemetry {
    ring: Mutex<Vec<u64>>,
    slo: Mutex<u64>,
}

impl Telemetry {
    pub fn close_window(&self) {
        let ring = self.ring.lock();
        let breaches = self.slo.lock();
        let _ = (ring.len(), *breaches);
    }

    pub fn evaluate_slo(&self) {
        let breaches = self.slo.lock();
        let ring = self.ring.lock();
        let _ = (*breaches, ring.len());
    }
}
