//! R5 violating fixture: a helper re-acquires a guard its caller still
//! holds — a self-deadlock on any non-reentrant lock, visible only
//! through the call graph.

use parking_lot::Mutex;

pub struct Registry {
    entries: Mutex<Vec<String>>,
}

impl Registry {
    fn flush(&self) {
        self.entries.lock().clear();
    }

    pub fn rotate(&self) {
        let entries = self.entries.lock();
        if entries.len() > 64 {
            self.flush();
        }
    }
}
