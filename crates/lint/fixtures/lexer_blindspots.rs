//! Lexer blind-spot fixture: constructs that historically confuse
//! token-level scanners. Both passes must stay completely silent here —
//! every banned name below is quoted, commented, or raw-string-guarded,
//! and the generics/lifetimes/attributes must not derail fact extraction.
//!
//! A comment mentioning HashMap, thread_rng and Instant::now() is not a
//! violation. /* Nor is .unwrap() in a /* nested */ block comment. */

#[derive(Clone, Debug)]
#[cfg_attr(test, allow(dead_code))]
pub struct Frame<'a> {
    payload: &'a [u8],
    chunks: Vec<Vec<u8>>,
}

#[allow(
    dead_code,
    unused_variables,
    clippy::needless_lifetimes
)]
impl<'a> Frame<'a> {
    pub fn doc_example() -> &'static str {
        r#"let mut m = HashMap::new(); let r = thread_rng(); m.insert(r.gen(), Instant::now()).unwrap();"#
    }

    pub fn raw_with_hashes() -> &'static str {
        r##"a raw string holding "#quoted# SystemTime::now and self.slo.lock() inside"##
    }

    pub fn cooked() -> &'static str {
        "rand::random::<u64>() and OsRng stay strings, not findings"
    }

    pub fn lifetimes_are_not_chars(&self, marker: char) -> &'a [u8] {
        if marker == 'x' || marker == '\n' {
            return self.payload;
        }
        &self.payload[..0]
    }

    pub fn nested_generics(&self) -> Vec<Vec<u8>> {
        self.chunks.clone()
    }
}
