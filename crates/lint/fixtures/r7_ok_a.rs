//! R7 clean twin (analyzed as a `wire.rs`): one opcode, a total
//! encode/decode pairing, matching scalar counts, and status bytes that
//! agree between the encoders and `response_body`.

pub const OP_QUERY: u8 = 1;

pub fn encode_query(out: &mut Vec<u8>) {
    out.push(OP_QUERY);
}

pub fn decode_request(frame: &[u8]) -> Option<u8> {
    if frame[0] == OP_QUERY {
        Some(OP_QUERY)
    } else {
        None
    }
}

pub fn encode_query_response(count: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&count.to_be_bytes());
    out
}

pub fn decode_query_response(cur: &mut Cursor) -> u32 {
    cur.u32()
}

pub fn encode_error_response(msg: &str) -> Vec<u8> {
    let mut out = vec![1u8];
    out.extend_from_slice(msg.as_bytes());
    out
}

pub fn response_body(frame: &[u8]) -> Option<(u8, &[u8])> {
    match frame[0] {
        0 => Some((0, &frame[1..])),
        1 => Some((1, &frame[1..])),
        _ => None,
    }
}
