//! R5 clean twin: both paths acquire the guards in the same canonical
//! order (ring before slo), so the lock-order graph is acyclic.

use parking_lot::Mutex;

pub struct Telemetry {
    ring: Mutex<Vec<u64>>,
    slo: Mutex<u64>,
}

impl Telemetry {
    pub fn close_window(&self) {
        let ring = self.ring.lock();
        let breaches = self.slo.lock();
        let _ = (ring.len(), *breaches);
    }

    pub fn evaluate_slo(&self) {
        let ring = self.ring.lock();
        let breaches = self.slo.lock();
        let _ = (ring.len(), *breaches);
    }
}
