//! R2 clean twin — MUST pass: randomness forked from the seeded RNG,
//! time taken from the simulation clock.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub fn jitter(seed: u64, sim_time: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let r: u64 = rng.random();
    r ^ sim_time
}

// Mentions in strings and comments never count: "SystemTime::now".
pub const NOTE: &str = "thread_rng is banned outside ar-obs and dht/udp.rs";

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let _t = std::time::Instant::now();
    }
}
