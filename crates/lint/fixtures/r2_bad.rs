//! R2 fixture — MUST be flagged: ambient entropy and wall clocks.
//! Never compiled; scanned as text.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    let r: u64 = rand::random();
    let t = std::time::SystemTime::now();
    let i = std::time::Instant::now();
    let _ = (t, i, &mut rng);
    r
}
