//! R4 fixture — an emitter using a mix of study and telemetry kinds.
//! Never compiled; scanned as text.

pub fn run(obs: &Obs) {
    obs.event("crawl[0]", EventKind::RetryFired, None, 3, "loss burst");
    obs.event("study", EventKind::PhaseFailed, None, 1, "guard tripped");
    obs.event("serve", EventKind::SloBreach, None, 1, "window 7: shed 80 > 50 permille");
    obs.event("serve", EventKind::StatsServed, None, 1, "stats scraped at tick 4096");
}
