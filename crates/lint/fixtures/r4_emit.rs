//! R4 fixture — an emitter using both kinds. Never compiled; scanned as
//! text.

pub fn run(obs: &Obs) {
    obs.event("crawl[0]", EventKind::RetryFired, None, 3, "loss burst");
    obs.event("study", EventKind::PhaseFailed, None, 1, "guard tripped");
}
