//! R7 violating fixture (analyzed as a `wire.rs`): the generation
//! response encoder writes two scalar fields but its decoder reads one,
//! and the encoders emit a status byte 3 that `response_body` never
//! matches (while matching a 1 nothing emits).

pub const OP_GENERATION: u8 = 2;

pub fn encode_generation(out: &mut Vec<u8>) {
    out.push(OP_GENERATION);
}

pub fn decode_request(frame: &[u8]) -> bool {
    frame[0] == OP_GENERATION
}

pub fn encode_generation_response(generation: u64, tick: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&generation.to_be_bytes());
    out.extend_from_slice(&tick.to_be_bytes());
    out
}

pub fn decode_generation_response(cur: &mut Cursor) -> u64 {
    cur.u64()
}

pub fn encode_fail_response(msg: &str) -> Vec<u8> {
    let mut out = vec![3u8];
    out.extend_from_slice(msg.as_bytes());
    out
}

pub fn response_body(frame: &[u8]) -> Option<(u8, &[u8])> {
    match frame[0] {
        0 => Some((0, &frame[1..])),
        1 => Some((1, &frame[1..])),
        _ => None,
    }
}
