//! R1 clean twin — MUST pass: BTree collections in live code, and the
//! unordered ones only inside `#[cfg(test)]`.

use std::collections::{BTreeMap, BTreeSet};

pub fn summarize(rows: &[(String, u64)]) -> String {
    let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (name, v) in rows {
        by_name.insert(name, *v);
        seen.insert(name);
    }
    let mut out = String::new();
    for (name, v) in &by_name {
        out.push_str(&format!("{name}: {v}\n"));
    }
    out
}

// A comment mentioning HashMap is fine, and so is the string "HashSet".
pub const NOTE: &str = "HashSet iteration order is not for artifacts";

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_use_unordered_maps() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
