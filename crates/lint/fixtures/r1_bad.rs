//! R1 fixture — MUST be flagged: unordered collections on what the rule
//! treats as an artifact path. Never compiled; scanned as text.

use std::collections::{HashMap, HashSet};

pub fn summarize(rows: &[(String, u64)]) -> String {
    let mut by_name: HashMap<&str, u64> = HashMap::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for (name, v) in rows {
        by_name.insert(name, *v);
        seen.insert(name);
    }
    // Iteration order leaks straight into the artifact.
    let mut out = String::new();
    for (name, v) in &by_name {
        out.push_str(&format!("{name}: {v}\n"));
    }
    out
}
