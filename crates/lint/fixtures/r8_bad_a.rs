//! R8 violating fixture: `lap()` launders a wall-clock reading through a
//! Duration return value — no banned token appears at the call site, but
//! the artifact line is nondeterministic all the same.

use std::time::{Duration, Instant};

pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    pub fn lap(&self) -> Duration {
        Instant::now() - self.t0
    }
}

pub fn render_summary(out: &mut Vec<String>, watch: &Stopwatch) {
    let took = watch.lap();
    out.push(format!("crawl took {took:?}"));
}
