//! R7 clean twin (analyzed as a `wire.rs`): two opcodes sharing one
//! decode dispatcher, multi-field responses with matching scalar counts,
//! and a status-only overload reply — all total, no drift.

pub const OP_HEALTH: u8 = 3;
pub const OP_STATS: u8 = 4;

pub fn encode_health(out: &mut Vec<u8>) {
    out.push(OP_HEALTH);
}

pub fn encode_stats(out: &mut Vec<u8>) {
    out.push(OP_STATS);
}

pub fn decode_request(frame: &[u8]) -> Option<u8> {
    match frame[0] {
        x if x == OP_HEALTH => Some(OP_HEALTH),
        x if x == OP_STATS => Some(OP_STATS),
        _ => None,
    }
}

pub fn encode_health_response(state: u8, tick: u16) -> Vec<u8> {
    let mut out = vec![0u8];
    out.push(state);
    out.extend_from_slice(&tick.to_be_bytes());
    out
}

pub fn decode_health_response(cur: &mut Cursor) -> (u8, u16) {
    (cur.u8(), cur.u16())
}

pub fn encode_stats_response(tick: u64, depth: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&tick.to_be_bytes());
    out.extend_from_slice(&depth.to_be_bytes());
    out
}

pub fn decode_stats_response(cur: &mut Cursor) -> (u64, u32) {
    (cur.u64(), cur.u32())
}

pub fn encode_error_response(msg: &str) -> Vec<u8> {
    let mut out = vec![1u8];
    out.extend_from_slice(msg.as_bytes());
    out
}

pub fn encode_overloaded_response() -> Vec<u8> {
    vec![2u8]
}

pub fn response_body(frame: &[u8]) -> Option<(u8, &[u8])> {
    match frame[0] {
        0 => Some((0, &frame[1..])),
        1 => Some((1, &frame[1..])),
        2 => Some((2, &frame[1..])),
        _ => None,
    }
}
