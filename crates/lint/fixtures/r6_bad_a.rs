//! R6 violating fixture: Relaxed loads inside the serialization sink
//! itself — worker increments may not be visible to the report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub struct Metrics {
    counters: BTreeMap<String, Arc<AtomicU64>>,
}

impl Metrics {
    pub fn report(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }
}
