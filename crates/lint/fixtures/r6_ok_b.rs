//! R6 clean twin: hot-path atomics may stay Relaxed when no
//! serialization sink can reach them — a stop flag and a spin counter
//! that never feed an artifact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Worker {
    stop: AtomicBool,
    spins: AtomicU64,
}

impl Worker {
    pub fn run(&self) {
        while !self.stop.load(Ordering::Relaxed) {
            self.spins.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}
