//! R3 clean twin — MUST pass: the same parser returning Results, with
//! panics confined to `#[cfg(test)]`.

pub fn parse_feed(text: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let value: u32 = line
            .parse()
            .map_err(|e| format!("line {}: {e}", idx + 1))?;
        out.push(value);
    }
    if out.is_empty() {
        return Err("empty feed".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::parse_feed;

    #[test]
    fn tests_may_unwrap() {
        assert_eq!(parse_feed("1\n2\n").unwrap(), vec![1, 2]);
    }
}
