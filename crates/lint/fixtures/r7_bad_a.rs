//! R7 violating fixture (analyzed as a `wire.rs`): `OP_PING` is encoded
//! but no decode function handles it, and its response pair is missing
//! on both sides — a half-implemented opcode.

pub const OP_QUERY: u8 = 1;
pub const OP_PING: u8 = 5;

pub fn encode_query(out: &mut Vec<u8>) {
    out.push(OP_QUERY);
}

pub fn decode_request(frame: &[u8]) -> Option<u8> {
    if frame[0] == OP_QUERY {
        Some(OP_QUERY)
    } else {
        None
    }
}

pub fn encode_ping(out: &mut Vec<u8>) {
    out.push(OP_PING);
}

pub fn encode_query_response(count: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    out.extend_from_slice(&count.to_be_bytes());
    out
}

pub fn decode_query_response(cur: &mut Cursor) -> u32 {
    cur.u32()
}
