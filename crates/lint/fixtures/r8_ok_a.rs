//! R8 clean twin: the caller consumes a tainted duration but scrubs the
//! report with `strip_timings` before anything is serialized — the
//! sanctioned pattern for measurement-path code.

use std::time::{Duration, Instant};

pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    pub fn lap(&self) -> Duration {
        Instant::now() - self.t0
    }
}

pub fn render_report(report: &mut Report, watch: &Stopwatch) {
    let took = watch.lap();
    report.note_span(took);
    report.strip_timings();
}
