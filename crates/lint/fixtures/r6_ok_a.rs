//! R6 clean twin: the same sink shapes with Acquire loads — cross-thread
//! updates are visible to the serializer.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub struct Metrics {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    depth: AtomicU64,
}

impl Metrics {
    pub fn report(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Acquire)))
            .collect()
    }

    fn queue_depth(&self) -> u64 {
        self.depth.load(Ordering::Acquire)
    }

    pub fn encode_stats_response(&self) -> Vec<u8> {
        let mut out = vec![0u8];
        out.extend_from_slice(&self.queue_depth().to_be_bytes());
        out
    }
}
