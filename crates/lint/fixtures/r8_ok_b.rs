//! R8 clean twin: a Duration built from the deterministic logical clock
//! carries no entropy — time-typed is only tainted when an R2 source
//! feeds it.

use std::time::Duration;

pub fn tick_duration(ticks: u64) -> Duration {
    Duration::from_millis(ticks * 10)
}

pub fn schedule(out: &mut Vec<Duration>, ticks: u64) {
    let step = tick_duration(ticks);
    out.push(step);
}
