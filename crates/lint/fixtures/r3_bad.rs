//! R3 fixture — MUST be flagged: panic paths inside a fault-reachable
//! parser. Never compiled; scanned as text.

pub fn parse_feed(text: &str) -> Vec<u32> {
    let mut out = Vec::new();
    for line in text.lines() {
        let value: u32 = line.parse().unwrap();
        out.push(value);
    }
    if out.is_empty() {
        panic!("empty feed");
    }
    let first = out.first().expect("nonempty");
    let _ = first;
    out
}
