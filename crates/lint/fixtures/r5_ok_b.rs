//! R5 clean twin: the guards are statement temporaries, dropped at each
//! `;` — opposite textual order is fine because they are never nested.

use parking_lot::Mutex;

pub struct Telemetry {
    ring: Mutex<Vec<u64>>,
    slo: Mutex<u64>,
}

impl Telemetry {
    pub fn drain(&self) {
        self.ring.lock().clear();
        self.slo.lock().count_ones();
    }

    pub fn refill(&self) {
        self.slo.lock().count_ones();
        self.ring.lock().clear();
    }
}
