//! R8 violating fixture: the taint crosses two call edges — `stamp()` is
//! the entropy source, `elapsed_since_start()` is a time-typed wrapper,
//! and the artifact writer only ever touches the wrapper.

use std::time::{Duration, Instant};

fn stamp() -> Instant {
    Instant::now()
}

fn elapsed_since_start(start: &Instant) -> Duration {
    stamp() - *start
}

pub fn write_artifact(lines: &mut Vec<String>, start: &Instant) {
    let wall = elapsed_since_start(start);
    lines.push(format!("elapsed {wall:?}"));
}
