//! Pass 2 substrate: the workspace symbol table and conservative call
//! graph built from the per-file facts of [`crate::symbols`].
//!
//! Call resolution is name-based — a token-level analyzer has no types —
//! and deliberately over-approximates: a call site resolves to every
//! same-file function of that name, or, when the file defines none, to
//! every function of that name anywhere in the workspace. Rules built on
//! top must therefore be shaped so that extra edges can only produce
//! *findings to inspect*, never silent passes. Every container here is a
//! `BTreeMap`/`BTreeSet` and every walk is index-ordered, so rule output
//! is byte-stable across runs.

use crate::symbols::{FileFacts, FnFacts};
use std::collections::{BTreeMap, BTreeSet};

/// A function's identity: (file index, fn index) in scan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId(pub usize, pub usize);

pub struct Workspace<'a> {
    pub files: &'a [FileFacts],
    /// name → every function with that name, in scan order.
    by_name: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> Workspace<'a> {
    pub fn build(files: &'a [FileFacts]) -> Workspace<'a> {
        let mut by_name: BTreeMap<&'a str, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(&f.name).or_default().push(FnId(fi, gi));
            }
        }
        Workspace { files, by_name }
    }

    pub fn fun(&self, id: FnId) -> &'a FnFacts {
        &self.files[id.0].fns[id.1]
    }

    pub fn path(&self, id: FnId) -> &'a str {
        &self.files[id.0].path
    }

    /// Every function a call to `name` from `from` may reach: same-file
    /// candidates when the file has any, otherwise all workspace
    /// candidates (methods on std types resolve to nothing and vanish).
    pub fn resolve(&self, from: FnId, name: &str) -> Vec<FnId> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let local: Vec<FnId> = all.iter().copied().filter(|id| id.0 == from.0).collect();
        if local.is_empty() {
            all.clone()
        } else {
            local
        }
    }

    /// Deduplicated callee set of one function.
    pub fn callees(&self, id: FnId) -> BTreeSet<FnId> {
        let mut out = BTreeSet::new();
        for call in &self.fun(id).calls {
            out.extend(self.resolve(id, &call.name));
        }
        out
    }

    /// All function ids in deterministic order.
    pub fn all_fns(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for gi in 0..file.fns.len() {
                out.push(FnId(fi, gi));
            }
        }
        out
    }

    /// For every function, the set of lock classes it may acquire —
    /// directly or through any transitive callee (fixpoint over the call
    /// graph; cycles converge because sets only grow).
    pub fn transitive_locks(&self) -> BTreeMap<FnId, BTreeSet<String>> {
        let mut locks: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
        for id in self.all_fns() {
            locks.insert(
                id,
                self.fun(id).locks.iter().map(|l| l.class.clone()).collect(),
            );
        }
        let callees: BTreeMap<FnId, BTreeSet<FnId>> = self
            .all_fns()
            .into_iter()
            .map(|id| (id, self.callees(id)))
            .collect();
        loop {
            let mut changed = false;
            for id in self.all_fns() {
                let mut gained: BTreeSet<String> = BTreeSet::new();
                for callee in &callees[&id] {
                    gained.extend(locks[callee].iter().cloned());
                }
                let mine = locks.get_mut(&id).expect("seeded above");
                let before = mine.len();
                mine.extend(gained);
                changed |= mine.len() != before;
            }
            if !changed {
                return locks;
            }
        }
    }

    /// Every function reachable (forward, over call edges) from a
    /// function satisfying `is_seed`, mapped to the seed that first
    /// reached it — BFS in deterministic order.
    pub fn reachable_from<F: Fn(&FnFacts) -> bool>(&self, is_seed: F) -> BTreeMap<FnId, FnId> {
        let mut origin: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut frontier: Vec<FnId> = Vec::new();
        for id in self.all_fns() {
            if is_seed(self.fun(id)) {
                origin.insert(id, id);
                frontier.push(id);
            }
        }
        while let Some(id) = frontier.pop() {
            let root = origin[&id];
            for callee in self.callees(id) {
                if let std::collections::btree_map::Entry::Vacant(e) = origin.entry(callee) {
                    e.insert(root);
                    frontier.push(callee);
                }
            }
        }
        origin
    }
}

/// One `held A, acquired B` observation for R5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub path: String,
    pub line: u32,
    /// Function holding the outer guard.
    pub holder: String,
    /// `Some(callee)` when B is acquired inside a called function rather
    /// than directly in `holder`'s body.
    pub via: Option<String>,
}

/// The lock-order graph: for every pair of classes (A, B), the first
/// site observed where A is held while B is acquired.
pub fn lock_order_edges(ws: &Workspace<'_>) -> BTreeMap<(String, String), LockEdge> {
    let trans = ws.transitive_locks();
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    for id in ws.all_fns() {
        let f = ws.fun(id);
        for outer in &f.locks {
            let held = outer.tok + 1..=outer.held_to;
            // Direct nested acquisition in the same body.
            for inner in &f.locks {
                if held.contains(&inner.tok) {
                    edges
                        .entry((outer.class.clone(), inner.class.clone()))
                        .or_insert_with(|| LockEdge {
                            path: ws.path(id).to_string(),
                            line: inner.line,
                            holder: f.name.clone(),
                            via: None,
                        });
                }
            }
            // Acquisition inside a callee while the guard is live.
            for call in &f.calls {
                if !held.contains(&call.tok) {
                    continue;
                }
                for target in ws.resolve(id, &call.name) {
                    for class in &trans[&target] {
                        edges
                            .entry((outer.class.clone(), class.clone()))
                            .or_insert_with(|| LockEdge {
                                path: ws.path(id).to_string(),
                                line: call.line,
                                holder: f.name.clone(),
                                via: Some(call.name.clone()),
                            });
                    }
                }
            }
        }
    }
    edges
}

/// Classes transitively reachable from `start` in the lock-order graph.
pub fn order_reachable(
    edges: &BTreeMap<(String, String), LockEdge>,
    start: &str,
) -> BTreeSet<String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut frontier = vec![start.to_string()];
    while let Some(node) = frontier.pop() {
        for (a, b) in edges.keys() {
            if *a == node && seen.insert(b.clone()) {
                frontier.push(b.clone());
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::FileFacts;

    fn build(files: &[(&str, &str)]) -> Vec<FileFacts> {
        files
            .iter()
            .map(|(p, s)| FileFacts::extract(p, &lex(s)))
            .collect()
    }

    #[test]
    fn same_file_resolution_beats_workspace() {
        let facts = build(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn go() { helper(); }\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let ws = Workspace::build(&facts);
        let go = FnId(0, 1);
        assert_eq!(ws.fun(go).name, "go");
        assert_eq!(ws.resolve(go, "helper"), vec![FnId(0, 0)]);
        // From b's perspective there is no local `go`: all candidates.
        assert_eq!(ws.resolve(FnId(1, 0), "go"), vec![go]);
    }

    #[test]
    fn transitive_locks_cross_files() {
        let facts = build(&[
            (
                "crates/a/src/lib.rs",
                "fn leaf(&self) { self.inner.lock().push(1); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "fn mid(&self) { leaf(); }\nfn top(&self) { mid(); }\n",
            ),
        ]);
        let ws = Workspace::build(&facts);
        let trans = ws.transitive_locks();
        assert!(trans[&FnId(1, 1)].contains("a::inner"), "{trans:?}");
    }

    #[test]
    fn interprocedural_lock_edges_carry_the_callee() {
        let facts = build(&[(
            "crates/a/src/lib.rs",
            "fn helper(&self) { self.beta.lock().push(1); }\n\
             fn outer(&self) { let g = self.alpha.lock(); helper(); }\n",
        )]);
        let ws = Workspace::build(&facts);
        let edges = lock_order_edges(&ws);
        let edge = &edges[&("a::alpha".to_string(), "a::beta".to_string())];
        assert_eq!(edge.via.as_deref(), Some("helper"));
        assert_eq!(edge.holder, "outer");
        let reach = order_reachable(&edges, "a::alpha");
        assert!(reach.contains("a::beta"));
    }

    #[test]
    fn reachability_tracks_the_seed() {
        let facts = build(&[(
            "crates/a/src/lib.rs",
            "fn report(&self) { helper(); }\nfn helper(&self) { deep(); }\nfn deep() {}\n",
        )]);
        let ws = Workspace::build(&facts);
        let reach = ws.reachable_from(|f| f.name == "report");
        assert_eq!(reach.len(), 3);
        assert_eq!(reach[&FnId(0, 2)], FnId(0, 0), "deep's origin is report");
    }
}
