//! `ar-lint` — workspace invariant checker.
//!
//! Statically enforces the determinism, seeded-randomness, and
//! panic-safety rules the dynamic tests (thread-count byte-identity,
//! zero-intensity fault silence, metrics on/off identity) can only catch
//! probabilistically.
//!
//! The analyzer runs in two passes:
//!
//! 1. **Facts** — each file is lexed once ([`lexer`]); the token rules
//!    R1–R3 run per file ([`rules`]) while [`symbols`] extracts the
//!    function-level facts (calls, guard held-ranges, atomic orderings,
//!    entropy tokens, wire constants) the graph rules need.
//! 2. **Graph** — [`graph`] joins the facts into a workspace symbol
//!    table and conservative call graph; [`rules_graph`] runs the
//!    interprocedural rules R5–R8 on top, and R4 cross-checks the event
//!    taxonomy.
//!
//! See `config` for the `lint.toml` allowlist format, `findings` for the
//! RunReport-shaped output, and `explain` for the per-rule rationale
//! (`ar-lint --explain R5`).
//!
//! Runs two ways: `cargo run -p ar-lint` (CI, local) and as the tier-1
//! `lint_clean` test, so a violation fails `cargo test` too.

pub mod config;
pub mod explain;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod rules_graph;
pub mod symbols;

pub use config::Config;
pub use findings::{Finding, LintRun};
pub use symbols::FileFacts;

use std::path::{Path, PathBuf};

/// Scan one source file: R1–R3 findings plus the event kinds it emits
/// (for the workspace-level R4 pass). Exposed for the fixture self-tests.
pub fn scan_source(
    rel_path: &str,
    src: &str,
    config: &Config,
) -> (Vec<Finding>, Vec<(String, u32)>) {
    scan_tokens(rel_path, &lexer::lex(src), config)
}

/// Token-level pass over one already-lexed file.
fn scan_tokens(
    rel_path: &str,
    tokens: &[lexer::Token],
    config: &Config,
) -> (Vec<Finding>, Vec<(String, u32)>) {
    let mask = rules::test_mask(tokens);
    let mut findings = rules::rule_r1(rel_path, &tokens, &mask);
    findings.extend(rules::rule_r2(rel_path, &tokens, &mask));
    findings.extend(rules::rule_r3(rel_path, &tokens, &mask, config));
    // ar-obs is the definition site of the taxonomy, not an emitter.
    let emitted = if rel_path.starts_with("crates/obs/") {
        Vec::new()
    } else {
        rules::emitted_kinds(&tokens, &mask)
    };
    (findings, emitted)
}

/// Run the graph rules R5–R8 over already-extracted file facts.
pub fn graph_findings(facts: &[FileFacts]) -> Vec<Finding> {
    let ws = graph::Workspace::build(facts);
    let mut findings = rules_graph::rule_r5(&ws);
    findings.extend(rules_graph::rule_r6(&ws));
    findings.extend(rules_graph::rule_r7(facts));
    findings.extend(rules_graph::rule_r8(&ws));
    findings
}

/// Analyze a pseudo-workspace of in-memory sources with the full
/// two-pass pipeline, returning R5–R8 findings in report order. This is
/// the entry point the fixture self-tests drive.
pub fn analyze_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    let facts: Vec<FileFacts> = files
        .iter()
        .map(|(path, src)| FileFacts::extract(path, &lexer::lex(src)))
        .collect();
    let mut findings = graph_findings(&facts);
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.symbol).cmp(&(&b.path, b.line, b.rule, &b.symbol))
    });
    findings
}

/// Apply the allowlist: mark matching findings suppressed, and turn
/// config problems (stale entries, empty justifications) into findings.
pub fn apply_allowlist(findings: &mut Vec<Finding>, config: &Config) {
    let mut used = vec![false; config.allows.len()];
    for f in findings.iter_mut() {
        if let Some(idx) = config
            .allows
            .iter()
            .position(|a| a.rule == f.rule && a.path == f.path && a.symbol == f.symbol)
        {
            used[idx] = true;
            if !config.allows[idx].reason.trim().is_empty() {
                f.allowed = Some(config.allows[idx].reason.clone());
            }
        }
    }
    for (idx, entry) in config.allows.iter().enumerate() {
        if entry.reason.trim().is_empty() {
            findings.push(Finding {
                rule: "CONFIG",
                path: "lint.toml".into(),
                line: 0,
                symbol: format!("{}:{}:{}", entry.rule, entry.path, entry.symbol),
                message: "allowlist entry has an empty justification; every suppression \
                          must say why the violation is safe"
                    .into(),
                allowed: None,
            });
        } else if !used[idx] {
            // Distinguish a plain stale entry from the near-miss where
            // path+symbol match a real finding but the rule field names
            // the wrong rule — the entry suppresses nothing while looking
            // like it covers the violation.
            let message = match findings
                .iter()
                .find(|f| f.rule != entry.rule && f.path == entry.path && f.symbol == entry.symbol)
            {
                Some(f) => format!(
                    "stale allowlist entry: the finding at {}:{} is {} — fix the \
                     entry's rule field (currently {}) or remove it",
                    f.path, f.symbol, f.rule, entry.rule
                ),
                None => "stale allowlist entry matches nothing; remove it so it cannot \
                         silently excuse a future violation"
                    .to_string(),
            };
            findings.push(Finding {
                rule: "CONFIG",
                path: "lint.toml".into(),
                line: 0,
                symbol: format!("{}:{}:{}", entry.rule, entry.path, entry.symbol),
                message,
                allowed: None,
            });
        }
    }
}

/// Recursively collect `.rs` files under `dir`, workspace-relative with
/// forward slashes, sorted for a deterministic scan order.
fn collect_rs_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = Vec::new();
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            stack.push(src);
        }
    }
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace rooted at `root` (the directory holding
/// `Cargo.toml`, `lint.toml`, `README.md` and `crates/`).
pub fn lint_workspace(root: &Path) -> Result<LintRun, String> {
    let config = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => Config::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Config::default(),
        Err(e) => return Err(format!("lint.toml: {e}")),
    };

    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut emitted: Vec<(String, String, u32)> = Vec::new();
    let mut event_rs_tokens = None;
    // Pass 1: lex each file once; run the token rules and extract the
    // function-level facts the graph rules join in pass 2.
    let mut facts: Vec<FileFacts> = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let tokens = lexer::lex(&src);
        facts.push(FileFacts::extract(rel, &tokens));
        let (file_findings, file_emitted) = scan_tokens(rel, &tokens, &config);
        findings.extend(file_findings);
        for (kind, line) in file_emitted {
            if !emitted.iter().any(|(k, _, _)| *k == kind) {
                emitted.push((kind, rel.clone(), line));
            }
        }
        if rel == "crates/obs/src/event.rs" {
            event_rs_tokens = Some(tokens);
        }
    }

    // Pass 2: the interprocedural rules R5–R8.
    findings.extend(graph_findings(&facts));

    // R4: taxonomy drift.
    let wire_names = event_rs_tokens
        .as_ref()
        .map(|t| rules::wire_names_from_event_rs(t))
        .ok_or("crates/obs/src/event.rs not found — cannot check the event taxonomy")?;
    if wire_names.is_empty() {
        return Err("no wire names found in EventKind::name() — lexer or layout drift".into());
    }
    let readme_path = root.join("README.md");
    let readme = std::fs::read_to_string(&readme_path)
        .map_err(|e| format!("{}: {e}", readme_path.display()))?;
    let readme_kinds = rules::kinds_from_readme(&readme);
    findings.extend(rules::rule_r4(
        &wire_names,
        &readme_kinds,
        &emitted,
        "README.md",
    ));

    apply_allowlist(&mut findings, &config);
    // Deterministic report order: by path, line, rule, symbol.
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.symbol).cmp(&(&b.path, b.line, b.rule, &b.symbol))
    });
    Ok(LintRun {
        findings,
        files_scanned: files.len() as u64,
    })
}

/// The workspace root when running from the `ar-lint` crate directory
/// (`cargo run -p ar-lint`, `cargo test -p ar-lint`).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_suppresses_and_flags_stale_entries() {
        let config = Config::parse(
            "[[allow]]\nrule = \"R1\"\npath = \"crates/core/src/x.rs\"\nsymbol = \"HashMap\"\nreason = \"lookup only\"\n\
             [[allow]]\nrule = \"R2\"\npath = \"nowhere.rs\"\nsymbol = \"Instant::now\"\nreason = \"stale\"\n",
        )
        .unwrap();
        let (mut findings, _) = scan_source(
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\n",
            &config,
        );
        apply_allowlist(&mut findings, &config);
        let active: Vec<&Finding> = findings.iter().filter(|f| f.is_active()).collect();
        // The HashMap finding is suppressed; the stale entry surfaces.
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].rule, "CONFIG");
        assert!(active[0].message.contains("stale"));
        assert!(findings.iter().any(|f| f.allowed.is_some()));
    }

    #[test]
    fn empty_reason_is_never_a_valid_suppression() {
        // The config parser requires the key; simulate a whitespace reason.
        let config = Config {
            allows: vec![config::AllowEntry {
                rule: "R1".into(),
                path: "crates/core/src/x.rs".into(),
                symbol: "HashSet".into(),
                reason: "  ".into(),
            }],
            panic_scopes: vec![],
        };
        let (mut findings, _) = scan_source(
            "crates/core/src/x.rs",
            "use std::collections::HashSet;\n",
            &config,
        );
        apply_allowlist(&mut findings, &config);
        let active: Vec<&Finding> = findings.iter().filter(|f| f.is_active()).collect();
        // Both the violation and the empty-reason entry stay active.
        assert_eq!(active.len(), 2);
    }
}
