//! `ar-lint --explain <RULE>`: the rationale, an example violation, and
//! the allowlist policy for every rule — one authoritative place, also
//! used to generate the README rule-taxonomy table (`--taxonomy`).

/// Everything `--explain` prints for one rule.
pub struct RuleDoc {
    pub id: &'static str,
    pub title: &'static str,
    pub rationale: &'static str,
    pub example: &'static str,
    pub policy: &'static str,
}

pub const RULE_DOCS: [RuleDoc; 9] = [
    RuleDoc {
        id: "R1",
        title: "No unordered collections in artifact crates",
        rationale: "HashMap/HashSet iteration order varies per process (SipHash keys are \
                    random), so any one on a serialization or rendering path breaks the \
                    byte-identical artifact guarantee probabilistically — the worst kind \
                    of flake. BTreeMap/BTreeSet iterate in key order, always.",
        example: "use std::collections::HashMap;   // in crates/census/src/…\n\
                  let mut per_as: HashMap<u32, u64> = HashMap::new();",
        policy: "Allowlist only collections that provably never reach an artifact \
                 (e.g. a transient dedup set that is drained into a sorted Vec); the \
                 reason must say why ordering cannot leak.",
    },
    RuleDoc {
        id: "R2",
        title: "No ambient entropy or wall clocks",
        rationale: "thread_rng, OsRng, SystemTime::now, Instant::now and friends make a \
                    run irreproducible: the same seed must always produce the same \
                    bytes. All randomness flows from simnet's seeded RNG, all time from \
                    SimTime. ar-obs (span timing) and dht/udp.rs (real-socket \
                    deadlines) are exempt by design.",
        example: "let jitter = rand::random::<u64>() % 50;   // in crates/crawler/src/…",
        policy: "Allowlist only measurement-path uses whose values are stripped before \
                 any artifact is written (bench timings, span durations).",
    },
    RuleDoc {
        id: "R3",
        title: "No panic paths in fault-reachable scopes",
        rationale: ".unwrap()/.expect()/panic! inside the study phase bodies and feed \
                    parsers turns injected damage into a crash instead of a counted, \
                    diagnosable degradation. Those scopes parse hostile bytes by \
                    design — they must return Results and emit damage events.",
        example: "let snapshot: Snapshot = serde_json::from_str(&text).unwrap();\n\
                  // inside a [[panic_scope]] function",
        policy: "No allowlisting; either move the code out of the panic scope in \
                 lint.toml (with review) or handle the error.",
    },
    RuleDoc {
        id: "R4",
        title: "Event taxonomy must agree in three places",
        rationale: "The EventKind wire names, the README taxonomy table, and the kinds \
                    actually emitted in source drift apart silently — a renamed kind \
                    makes old dashboards and parsers misread new artifacts.",
        example: "obs.event(phase, EventKind::RetryFired, …) while the README table \
                  has no `retry_fired` row.",
        policy: "No allowlisting; fix the drifting side.",
    },
    RuleDoc {
        id: "R5",
        title: "Lock-order discipline (interprocedural)",
        rationale: "Two code paths taking the same pair of locks in opposite orders \
                    deadlock under load (ABBA). The rule builds a workspace lock-order \
                    graph — guard held-ranges model Rust drop semantics, and edges \
                    propagate through the call graph — and flags every edge in a \
                    cycle, including re-acquiring a non-reentrant guard already held.",
        example: "fn a(&self) { let g = self.ring.lock(); self.slo.lock(); }\n\
                  fn b(&self) { let g = self.slo.lock(); self.ring.lock(); }",
        policy: "Allowlist only when the two paths are proven never concurrent (e.g. \
                 one runs before threads spawn); the reason must name the proof.",
    },
    RuleDoc {
        id: "R6",
        title: "Atomic-ordering audit on serialization paths",
        rationale: "Ordering::Relaxed guarantees atomicity but not visibility: a counter \
                    bumped with Relaxed on a worker thread may read stale in the thread \
                    serializing an artifact or OP_STATS frame, breaking cross-run \
                    byte-identity exactly when it is hardest to reproduce. Atomics \
                    reachable from `encode_*`/`stats_frame`/`report` need Acquire \
                    loads and Release/AcqRel writes; hot-path atomics that never feed \
                    a sink may stay Relaxed.",
        example: "fn stats_frame(&self) -> StatsFrame {\n\
                  \u{20}   depths.iter().map(|d| d.load(Ordering::Relaxed)).collect()\n\
                  }",
        policy: "Allowlist only counters that are provably single-threaded by the time \
                 the sink runs (e.g. read after every worker joined); say so.",
    },
    RuleDoc {
        id: "R7",
        title: "Wire-schema drift (opcodes, status bytes, field counts)",
        rationale: "The wire protocol lives in hand-rolled encode_*/decode_* pairs. An \
                    opcode handled on one side only, two opcodes sharing a value, or a \
                    response whose encoder writes more scalar fields than its decoder \
                    reads — all decode garbage at runtime. Each OP_* const must have a \
                    distinct value, exactly one encode and one decode site, a matching \
                    encode/decode_<op>_response pair with equal scalar field counts, \
                    and status bytes agreeing with `response_body`.",
        example: "pub const OP_PING: u8 = 5;  // encoded by encode_ping_probe,\n\
                  // but decode_request has no OP_PING arm",
        policy: "No allowlisting; the protocol must be total. Asymmetric helpers \
                 (e.g. map encoders) are out of scope by the _response naming \
                 convention.",
    },
    RuleDoc {
        id: "R8",
        title: "Interprocedural entropy taint",
        rationale: "R2 catches Instant::now() at its token; it cannot see the value \
                    laundered through a helper — `fn lap() -> Duration` called from an \
                    artifact path reintroduces wall-clock nondeterminism with no banned \
                    token in sight. Functions returning Instant/SystemTime/Duration/\
                    RandomState that touch an R2 source taint their (transitive) \
                    time-typed wrappers; calling one from non-exempt code is flagged \
                    unless the caller scrubs with a strip_timings-style sink.",
        example: "fn lap(&self) -> Duration { self.t0.elapsed() } // t0: Instant::now()\n\
                  fn emit(&self) { artifact.timing = self.lap(); } // ← finding",
        policy: "Allowlist only when the tainted value demonstrably never reaches an \
                 artifact (logged and dropped); bench/, obs/ and dht/udp.rs are \
                 exempt wholesale.",
    },
    RuleDoc {
        id: "CONFIG",
        title: "lint.toml hygiene",
        rationale: "A stale allowlist entry (matching nothing, or naming the wrong \
                    rule for its path+symbol) can silently excuse a future violation; \
                    an entry without a justification is an unreviewable suppression.",
        example: "[[allow]]\nrule = \"R2\"      # but the finding at that path+symbol is R1\n\
                  path = \"crates/crawler/src/engine.rs\"\nsymbol = \"HashSet\"",
        policy: "Not applicable — CONFIG findings are themselves the enforcement.",
    },
];

pub fn doc_for(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id.eq_ignore_ascii_case(rule))
}

/// Render one rule's documentation for `--explain`.
pub fn render(doc: &RuleDoc) -> String {
    format!(
        "{} — {}\n\nWhy:\n  {}\n\nExample violation:\n{}\n\nAllowlist policy:\n  {}\n",
        doc.id,
        doc.title,
        doc.rationale,
        doc.example
            .lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        doc.policy
    )
}

/// The Markdown rule-taxonomy table for the README (`--taxonomy`).
pub fn taxonomy_table() -> String {
    let mut out = String::from("| rule | checks | allowlistable |\n|---|---|---|\n");
    for doc in &RULE_DOCS {
        let allowlistable = if doc.policy.starts_with("No allowlisting")
            || doc.policy.starts_with("Not applicable")
        {
            "no"
        } else {
            "with justification"
        };
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            doc.id, doc.title, allowlistable
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::RULES;

    #[test]
    fn every_rule_has_a_doc_and_vice_versa() {
        for rule in RULES {
            assert!(doc_for(rule).is_some(), "no --explain doc for {rule}");
        }
        assert_eq!(RULE_DOCS.len(), RULES.len());
    }

    #[test]
    fn explain_render_carries_all_sections() {
        let text = render(doc_for("r6").expect("case-insensitive lookup"));
        assert!(text.starts_with("R6 — "));
        for section in ["Why:", "Example violation:", "Allowlist policy:"] {
            assert!(text.contains(section), "missing {section}");
        }
    }

    #[test]
    fn taxonomy_table_lists_every_rule() {
        let table = taxonomy_table();
        for rule in RULES {
            assert!(table.contains(&format!("| `{rule}` |")), "missing {rule}");
        }
        assert!(table.contains("| rule | checks | allowlistable |"));
    }
}
