//! `lint.toml`: the allowlist and rule-scope configuration.
//!
//! Hand-rolled parser for the small TOML subset the file actually uses —
//! `[[allow]]` / `[[panic_scope]]` array-of-table headers, `key = "value"`
//! string pairs, `#` comments — because no TOML crate is vendored. The
//! parser is strict: an unrecognised line is an error, not a silent skip,
//! so a typo in the allowlist cannot quietly re-enable a violation.

/// One allowlist entry. A finding is suppressed when `rule`, `path` and
/// `symbol` all match exactly; `reason` is mandatory and must be non-empty
/// (an allowlist without a written justification is itself a finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub symbol: String,
    pub reason: String,
}

/// One R3 scope: a file whose named functions (or the whole file, when
/// `functions` is empty) must stay panic-free outside `#[cfg(test)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicScope {
    pub path: String,
    pub functions: Vec<String>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    pub allows: Vec<AllowEntry>,
    pub panic_scopes: Vec<PanicScope>,
}

impl Config {
    pub fn parse(text: &str) -> Result<Config, String> {
        enum Section {
            None,
            Allow,
            PanicScope,
        }
        let mut config = Config::default();
        let mut section = Section::None;
        // Pending key/value pairs of the table being built.
        let mut pending: Vec<(String, String)> = Vec::new();

        let flush = |section: &Section,
                     pending: &mut Vec<(String, String)>,
                     config: &mut Config|
         -> Result<(), String> {
            let take = |pending: &[(String, String)], key: &str| -> Option<String> {
                pending
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            };
            match section {
                Section::None => {
                    if !pending.is_empty() {
                        return Err("key/value pair outside any [[table]]".into());
                    }
                }
                Section::Allow => {
                    let entry = AllowEntry {
                        rule: take(pending, "rule").ok_or("[[allow]] missing `rule`")?,
                        path: take(pending, "path").ok_or("[[allow]] missing `path`")?,
                        symbol: take(pending, "symbol").ok_or("[[allow]] missing `symbol`")?,
                        reason: take(pending, "reason").ok_or("[[allow]] missing `reason`")?,
                    };
                    config.allows.push(entry);
                }
                Section::PanicScope => {
                    let path = take(pending, "path").ok_or("[[panic_scope]] missing `path`")?;
                    let functions = take(pending, "functions")
                        .map(|f| {
                            f.split(',')
                                .map(|s| s.trim().to_string())
                                .filter(|s| !s.is_empty())
                                .collect()
                        })
                        .unwrap_or_default();
                    config.panic_scopes.push(PanicScope { path, functions });
                }
            }
            pending.clear();
            Ok(())
        };

        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("lint.toml:{}: {msg}: {raw:?}", idx + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                flush(&section, &mut pending, &mut config).map_err(|m| err(&m))?;
                section = match header.trim() {
                    "allow" => Section::Allow,
                    "panic_scope" => Section::PanicScope,
                    other => return Err(err(&format!("unknown table [[{other}]]"))),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = \"value\"`"));
            };
            let key = key.trim().to_string();
            let value = value.trim();
            let Some(unquoted) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(err("value must be a double-quoted string"));
            };
            pending.push((key, unquoted.to_string()));
        }
        flush(&section, &mut pending, &mut config)
            .map_err(|m| format!("lint.toml (at end): {m}"))?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allows_and_scopes() {
        let text = r#"
# determinism allowlist
[[allow]]
rule = "R1"
path = "crates/crawler/src/engine.rs"
symbol = "HashSet"
reason = "membership-only dedup"

[[panic_scope]]
path = "crates/core/src/study.rs"
functions = "crawl_period, atlas_task"

[[panic_scope]]
path = "crates/blocklists/src/parsers.rs"
"#;
        let c = Config::parse(text).unwrap();
        assert_eq!(c.allows.len(), 1);
        assert_eq!(c.allows[0].symbol, "HashSet");
        assert_eq!(c.panic_scopes.len(), 2);
        assert_eq!(
            c.panic_scopes[0].functions,
            vec!["crawl_period", "atlas_task"]
        );
        assert!(c.panic_scopes[1].functions.is_empty());
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nrule = \"R1\"\npath = \"x\"\nsymbol = \"HashMap\"\n";
        assert!(Config::parse(text)
            .unwrap_err()
            .contains("missing `reason`"));
    }

    #[test]
    fn junk_lines_are_rejected() {
        assert!(Config::parse("wibble").is_err());
        assert!(Config::parse("[[mystery]]").is_err());
        assert!(Config::parse("key = unquoted").is_err());
    }

    #[test]
    fn empty_config_is_fine() {
        assert_eq!(Config::parse("").unwrap(), Config::default());
    }
}
