//! Pass 1 of the two-pass analyzer: per-file fact extraction.
//!
//! Walks each file's token stream once and records, per function body:
//! call sites, lock acquisitions (with a held-until token range that
//! models Rust guard lifetimes), atomic operations with their memory
//! ordering, ambient-entropy tokens, and return-type identifiers — plus
//! the file's `u8` constants (wire opcodes / status bytes). The facts are
//! pure syntax: no type information, no resolution. Pass 2
//! ([`crate::graph`], [`crate::rules_graph`]) joins them across files.
//!
//! Test-masked code (`#[test]` / `#[cfg(test)]` items) contributes no
//! facts at all: test helpers may lock, time, and panic freely.

use crate::lexer::{Tok, Token};
use crate::rules::{masked, test_mask, R2_BANNED_IDENTS, R2_BANNED_PATHS};
use std::collections::BTreeSet;

/// One `name(...)` / `recv.name(...)` / `path::name(...)` call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called identifier (`stats_frame`, `lock`, `encode_counter`…).
    /// Resolution against the workspace symbol table happens in pass 2.
    pub name: String,
    pub line: u32,
    /// Index into the file's token stream (for held-range overlap tests).
    pub tok: usize,
}

/// One `recv.lock()` / `recv.read()` / `recv.write()` guard acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Lock class: `crate::receiver` (`serve::slo`, `obs::counters`…).
    /// The receiver field name is the only identity a token-level scanner
    /// has; prefixing the acquiring crate keeps same-named fields in
    /// different crates from aliasing.
    pub class: String,
    pub line: u32,
    pub tok: usize,
    /// Last token index at which the guard is still alive: end of the
    /// enclosing block for `let`-bound guards, end of the statement for
    /// temporaries (which is where Rust drops them — a `match x.lock() {…}`
    /// scrutinee lives through every arm).
    pub held_to: usize,
}

/// One atomic operation with its memory ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSite {
    /// Receiver field name (`tick`, `count`, `stop`…).
    pub receiver: String,
    /// `load`, `store`, `swap`, `fetch_add`…
    pub op: String,
    /// `Relaxed`, `Acquire`… — the first ordering named in the call
    /// (the success ordering for compare-exchange).
    pub ordering: String,
    pub line: u32,
}

/// Everything pass 1 knows about one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub name: String,
    pub start_line: u32,
    pub end_line: u32,
    /// Token span `[fn keyword, closing brace]` in the file's stream.
    pub start_tok: usize,
    pub end_tok: usize,
    /// Identifiers appearing in the return type (between `->` and the
    /// body `{`, stopping at `where`). Empty for `fn f()`-style.
    pub ret: Vec<String>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub atomics: Vec<AtomicSite>,
    /// R2-banned entropy/wall-clock tokens in the body (symbol, line) —
    /// recorded even in R2-exempt files, because R8 taints through them.
    pub entropy: Vec<(String, u32)>,
    /// SCREAMING_CASE identifiers referenced in the body (`OP_QUERY`,
    /// `MAX_FRAME`…) — how R7 ties opcode constants to encode/decode fns.
    pub const_refs: BTreeSet<String>,
    /// `vec![N, …]` initializers whose first element is an integer
    /// literal: (first value, extra element count, line). The wire
    /// convention puts the response status byte first.
    pub vec_inits: Vec<(u64, usize, u32)>,
    /// Integer literals ≤ 255 in the body — the status bytes a
    /// `response_body`-style decoder matches on.
    pub byte_literals: Vec<u64>,
}

/// A top-level-ish `const NAME: u8 = N;` (wire opcodes, status bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstByte {
    pub name: String,
    pub value: Option<u64>,
    pub line: u32,
}

/// All facts for one file.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// `serve` for `crates/serve/src/…`; empty outside `crates/`.
    pub crate_name: String,
    pub fns: Vec<FnFacts>,
    pub consts: Vec<ConstByte>,
}

/// Rust keywords that can precede `(` without being a call.
const NON_CALL_IDENTS: [&str; 8] = [
    "if", "while", "for", "match", "return", "loop", "break", "in",
];

const ATOMIC_OPS: [&str; 11] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string()
}

impl FileFacts {
    /// Extract all facts from one file's token stream.
    pub fn extract(path: &str, tokens: &[Token]) -> FileFacts {
        let mask = test_mask(tokens);
        let crate_name = crate_of(path);
        let spans = fn_token_spans(tokens, &mask);
        let mut fns = Vec::new();
        for (idx, span) in spans.iter().enumerate() {
            // Tokens inside nested fns belong to the nested fn only.
            let children: Vec<(usize, usize)> = spans
                .iter()
                .enumerate()
                .filter(|(j, s)| {
                    *j != idx && s.start_tok > span.start_tok && s.end_tok <= span.end_tok
                })
                .map(|(_, s)| (s.start_tok, s.end_tok))
                .collect();
            fns.push(extract_fn(&crate_name, tokens, span, &children));
        }
        FileFacts {
            path: path.to_string(),
            crate_name,
            fns,
            consts: extract_consts(tokens, &mask),
        }
    }
}

struct FnTokenSpan {
    name: String,
    start_tok: usize,
    /// Index of the `{` opening the body.
    body_tok: usize,
    end_tok: usize,
}

/// Token-index variant of [`crate::rules::fn_spans`], skipping
/// test-masked functions and bodiless trait methods.
fn fn_token_spans(tokens: &[Token], mask: &[(u32, u32)]) -> Vec<FnTokenSpan> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") || masked(mask, tokens[i].line) {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        let mut j = i + 2;
        let mut braces = 0usize;
        let mut body_tok = None;
        let mut end_tok = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct(';') if braces == 0 => break, // no body
                Tok::Punct('{') => {
                    if braces == 0 {
                        body_tok = Some(j);
                    }
                    braces += 1;
                }
                Tok::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        end_tok = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let (Some(body), Some(end)) = (body_tok, end_tok) {
            spans.push(FnTokenSpan {
                name: name.to_string(),
                start_tok: i,
                body_tok: body,
                end_tok: end,
            });
        }
    }
    spans
}

fn extract_fn(
    crate_name: &str,
    tokens: &[Token],
    span: &FnTokenSpan,
    children: &[(usize, usize)],
) -> FnFacts {
    let mut facts = FnFacts {
        name: span.name.clone(),
        start_line: tokens[span.start_tok].line,
        end_line: tokens[span.end_tok].line,
        start_tok: span.start_tok,
        end_tok: span.end_tok,
        ret: return_type_idents(tokens, span),
        ..FnFacts::default()
    };
    let owned = |i: usize| !children.iter().any(|&(lo, hi)| lo <= i && i <= hi);

    let mut i = span.body_tok;
    while i <= span.end_tok {
        if !owned(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        if let Some(v) = t.num_value() {
            if v <= 255 {
                facts.byte_literals.push(v);
            }
        }
        let Some(id) = t.ident() else {
            i += 1;
            continue;
        };

        // Constant references (R7 opcode usage).
        if id.len() > 1
            && id.chars().any(|c| c.is_ascii_alphabetic())
            && id
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            facts.const_refs.insert(id.to_string());
        }

        // `vec![N, …]` initializer (R7 status-byte convention).
        if id == "vec"
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('['))
        {
            if let Some((first, extras)) = vec_init(tokens, i + 2) {
                facts.vec_inits.push((first, extras, t.line));
            }
        }

        // Entropy tokens (R8 sources; same alphabet as R2).
        if R2_BANNED_IDENTS.contains(&id) {
            facts.entropy.push((id.to_string(), t.line));
        }
        for (a, b) in R2_BANNED_PATHS {
            if id == a
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
            {
                facts.entropy.push((format!("{a}::{b}"), t.line));
            }
        }

        // Call site: `id (` where `id` is not a keyword, not the name in
        // a nested `fn id(…)` header, and not a macro (`id!(…)`).
        let called = tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALL_IDENTS.contains(&id)
            && !(i > 0 && tokens[i - 1].is_ident("fn"));
        if called {
            facts.calls.push(CallSite {
                name: id.to_string(),
                line: t.line,
                tok: i,
            });
        }

        // Guard acquisition: `.lock()` / `.read()` / `.write()` with empty
        // parens (std io read/write always take arguments).
        if matches!(id, "lock" | "read" | "write")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(receiver) = receiver_ident(tokens, i - 1) {
                facts.locks.push(LockSite {
                    class: format!("{crate_name}::{receiver}"),
                    line: t.line,
                    tok: i,
                    held_to: held_until(tokens, span, i),
                });
            }
        }

        // Atomic op: `.op(… Ordering::X …)`.
        if ATOMIC_OPS.contains(&id)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(ordering) = ordering_in_args(tokens, i + 1) {
                let receiver = receiver_ident(tokens, i - 1).unwrap_or_default();
                facts.atomics.push(AtomicSite {
                    receiver,
                    op: id.to_string(),
                    ordering,
                    line: t.line,
                });
            }
        }

        i += 1;
    }
    facts
}

/// Identifiers between `->` and the body `{` (or `where`), skipping the
/// argument list so closure types in arguments don't masquerade as the
/// return type.
fn return_type_idents(tokens: &[Token], span: &FnTokenSpan) -> Vec<String> {
    // Find the matching `)` of the argument list.
    let mut i = span.start_tok + 2;
    while i < span.body_tok && !tokens[i].is_punct('(') {
        i += 1;
    }
    let mut parens = 0usize;
    while i < span.body_tok {
        if tokens[i].is_punct('(') {
            parens += 1;
        } else if tokens[i].is_punct(')') {
            parens -= 1;
            if parens == 0 {
                break;
            }
        }
        i += 1;
    }
    // `-> Type` after the argument list?
    let has_arrow = tokens.get(i + 1).is_some_and(|t| t.is_punct('-'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('>'));
    if !has_arrow {
        return Vec::new();
    }
    let mut out = Vec::new();
    for t in &tokens[i + 3..span.body_tok] {
        if let Some(id) = t.ident() {
            if id == "where" {
                break;
            }
            out.push(id.to_string());
        }
    }
    out
}

/// Walk back over `.`-chains to the receiver field name:
/// `state.peers.lock()` → `peers`, `inboxes[dest].lock()` → `inboxes`.
/// `dot` is the index of the `.` before the method name.
fn receiver_ident(tokens: &[Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    // Skip an index/call group: `recv[i]` / `recv(…)`.
    for (close, open) in [(']', '['), (')', '(')] {
        if tokens[j].is_punct(close) {
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                if tokens[j].is_punct(close) {
                    depth += 1;
                } else if tokens[j].is_punct(open) {
                    depth -= 1;
                }
            }
            if depth != 0 || j == 0 {
                return None;
            }
            j -= 1;
        }
    }
    tokens[j].ident().map(str::to_string)
}

/// First `Ordering::X` (or bare imported ordering name) inside the call's
/// parenthesis group starting at `open`.
fn ordering_in_args(tokens: &[Token], open: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if let Some(id) = tokens[i].ident() {
            if id == "Ordering"
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            {
                return tokens
                    .get(i + 3)
                    .and_then(|t| t.ident())
                    .map(str::to_string);
            }
            if ORDERINGS.contains(&id) {
                return Some(id.to_string());
            }
        }
        i += 1;
    }
    None
}

/// Last token index at which the guard acquired at `acq` (the method-name
/// token) is still alive.
///
/// * `let g = recv.lock();` — the guard is named: alive to the end of the
///   enclosing block.
/// * Everything else — a temporary: alive to the end of the enclosing
///   *statement* (the first `;` at nesting depth 0 relative to the
///   acquisition), which is exactly where Rust drops it; a
///   `match recv.lock() { … }` scrutinee therefore lives through all arms.
fn held_until(tokens: &[Token], span: &FnTokenSpan, acq: usize) -> usize {
    // Named binding ⇔ the statement starts with `let` and the guard
    // expression ends the statement (the token after `()` is `;`).
    let direct_bind = tokens.get(acq + 3).is_some_and(|t| t.is_punct(';')) && {
        // Scan back to the statement start: just past the previous
        // `;`/`{`/`}` — good enough for statement-shaped code.
        let mut j = acq;
        loop {
            if j == span.body_tok {
                break true; // body opens the statement — not a `let`
            }
            j -= 1;
            match &tokens[j].kind {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break false,
                Tok::Ident(s) if s == "let" => break true,
                _ => {}
            }
        }
    };

    let mut depth = 0usize;
    let mut i = acq + 3; // past `name ( )`
    while i <= span.end_tok {
        match &tokens[i].kind {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    // End of the enclosing block: both named guards and
                    // temporaries are dead past here.
                    return i;
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 && !direct_bind => return i,
            _ => {}
        }
        i += 1;
    }
    span.end_tok
}

/// Parse a `vec![…]` group starting at the `[` token: the first element's
/// integer value plus the count of further top-level elements. `None`
/// when the first element is not an integer literal or for `vec![x; n]`
/// repeat syntax.
fn vec_init(tokens: &[Token], open: usize) -> Option<(u64, usize)> {
    let first = tokens.get(open + 1)?.num_value()?;
    let mut depth = 1usize;
    let mut extras = 0usize;
    let mut i = open + 1;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Punct('[') | Tok::Punct('(') | Tok::Punct('{') => depth += 1,
            Tok::Punct(']') | Tok::Punct(')') | Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((first, extras));
                }
            }
            Tok::Punct(',') if depth == 1 => extras += 1,
            Tok::Punct(';') if depth == 1 => return None, // repeat syntax
            _ => {}
        }
        i += 1;
    }
    None
}

/// `const NAME: u8 = N;` declarations outside test code.
fn extract_consts(tokens: &[Token], mask: &[(u32, u32)]) -> Vec<ConstByte> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("const") || masked(mask, tokens[i].line) {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !(tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("u8"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('=')))
        {
            continue;
        }
        out.push(ConstByte {
            name: name.to_string(),
            value: tokens.get(i + 5).and_then(|t| t.num_value()),
            line: tokens[i].line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(src: &str) -> FileFacts {
        FileFacts::extract("crates/serve/src/x.rs", &lex(src))
    }

    #[test]
    fn calls_locks_atomics_and_returns_are_extracted() {
        let src = "fn f(&self) -> Duration {\n\
                     let g = self.alpha.lock();\n\
                     self.tick.fetch_add(1, Ordering::Relaxed);\n\
                     helper(g.len());\n\
                     Instant::now().elapsed()\n\
                   }\n";
        let f = &facts(src).fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.ret, vec!["Duration"]);
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].class, "serve::alpha");
        assert_eq!(f.atomics.len(), 1);
        assert_eq!(f.atomics[0].receiver, "tick");
        assert_eq!(f.atomics[0].ordering, "Relaxed");
        assert!(f.calls.iter().any(|c| c.name == "helper"));
        assert_eq!(f.entropy, vec![("Instant::now".to_string(), 5)]);
    }

    #[test]
    fn let_bound_guards_outlive_statement_temporaries() {
        let src = "fn f(&self) {\n\
                     let g = self.alpha.lock();\n\
                     self.beta.lock().push(1);\n\
                     other();\n\
                   }\n";
        let f = &facts(src).fns[0];
        let alpha = f.locks.iter().find(|l| l.class == "serve::alpha").unwrap();
        let beta = f.locks.iter().find(|l| l.class == "serve::beta").unwrap();
        // alpha (let-bound) is still held at beta's acquisition…
        assert!(alpha.held_to > beta.tok, "alpha should span the block");
        // …while beta (temporary) dies at its own statement's `;`, before
        // the `other()` call.
        let other = f.calls.iter().find(|c| c.name == "other").unwrap();
        assert!(beta.held_to < other.tok, "beta must not reach other()");
    }

    #[test]
    fn match_scrutinee_guards_live_through_the_arms() {
        let src = "fn f(&self) {\n\
                     let v = match self.inbox.lock() {\n\
                       Ok(mut q) => { self.other.lock().pop() }\n\
                       Err(_) => None,\n\
                     };\n\
                     late();\n\
                   }\n";
        let f = &facts(src).fns[0];
        let inbox = f.locks.iter().find(|l| l.class == "serve::inbox").unwrap();
        let other = f.locks.iter().find(|l| l.class == "serve::other").unwrap();
        assert!(inbox.held_to > other.tok, "scrutinee lives through arms");
        let late = f.calls.iter().find(|c| c.name == "late").unwrap();
        assert!(inbox.held_to < late.tok, "scrutinee dies at the statement");
    }

    #[test]
    fn nested_fns_own_their_facts_and_tests_are_skipped() {
        let src = "fn outer(&self) {\n\
                     fn inner() { banned.lock(); }\n\
                     inner();\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t(&self) { x.lock(); } }\n";
        let file = FileFacts::extract("crates/core/src/x.rs", &lex(src));
        assert_eq!(file.fns.len(), 2);
        let outer = file.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.locks.is_empty(), "inner's lock leaked into outer");
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        assert!(!file.fns.iter().any(|f| f.name == "t"), "test fn scanned");
    }

    #[test]
    fn u8_consts_are_collected_with_values() {
        let src = "pub const OP_QUERY: u8 = 1;\nconst BIG: u32 = 9;\nconst OP_X: u8 = 0x10;\n";
        let consts = facts(src).consts;
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].name, "OP_QUERY");
        assert_eq!(consts[0].value, Some(1));
        assert_eq!(consts[1].value, Some(16));
    }

    #[test]
    fn wire_facts_cover_const_refs_vec_inits_and_byte_literals() {
        let src = "fn encode_ping_response(x: u16) -> Vec<u8> {\n\
                     let mut out = vec![0u8, OP_PING];\n\
                     out.extend_from_slice(&x.to_be_bytes());\n\
                     out\n\
                   }\n";
        let f = &facts(src).fns[0];
        assert!(f.const_refs.contains("OP_PING"));
        assert_eq!(f.vec_inits, vec![(0, 1, 2)]);
        assert!(f.byte_literals.contains(&0));
        assert!(f.calls.iter().any(|c| c.name == "to_be_bytes"));
    }

    #[test]
    fn indexed_receivers_resolve_to_the_field_name() {
        let src = "fn f(&self) { self.queues[i].lock().push(1); }\n";
        let f = &facts(src).fns[0];
        assert_eq!(f.locks[0].class, "serve::queues");
    }
}
