//! A minimal Rust lexer — just enough structure for the invariant rules.
//!
//! The full `syn` AST is unavailable offline, and the rules only need
//! token-level facts (identifiers, punctuation, string literals, brace
//! structure) plus correct handling of everything that could *hide* a
//! token: comments (line and nested block), string literals (cooked, raw,
//! byte), char literals, and lifetimes. Doc comments and literals are
//! consumed so `"HashMap"` in a string or `// HashMap` in a comment never
//! produces an identifier token.

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident(String),
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String literal (cooked, raw, or byte); the *unquoted* contents.
    Str(String),
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Numeric literal (loosely lexed); carries the raw literal text so
    /// rules can compare constant values (`R7` opcode/status bytes).
    Num(String),
    /// Any other single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct(char),
}

impl Token {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Tok::Punct(c)
    }

    /// The integer value of a numeric literal, ignoring `_` separators and
    /// any type suffix (`0u8` → 0, `0x2A` → 42). `None` for floats, for
    /// out-of-range values, and for non-numeric tokens.
    pub fn num_value(&self) -> Option<u64> {
        let Tok::Num(raw) = &self.kind else {
            return None;
        };
        let text: String = raw.chars().filter(|&c| c != '_').collect();
        if text.contains('.') {
            return None;
        }
        let (radix, digits) = match text.as_bytes() {
            [b'0', b'x' | b'X', rest @ ..] => (16, rest),
            [b'0', b'o' | b'O', rest @ ..] => (8, rest),
            [b'0', b'b' | b'B', rest @ ..] => (2, rest),
            rest => (10, rest),
        };
        let mut value: u64 = 0;
        let mut seen = false;
        for &d in digits {
            let Some(v) = (d as char).to_digit(radix) else {
                // Type suffix (`u8`, `i64`, …) starts here; stop. A suffix
                // before any digit means this was not an integer literal.
                break;
            };
            value = value.checked_mul(u64::from(radix))?.checked_add(v.into())?;
            seen = true;
        }
        seen.then_some(value)
    }
}

/// Lex `src` into tokens. Never fails: unterminated constructs consume to
/// end of input, which is the forgiving behaviour a linter wants (the
/// compiler is the authority on well-formedness, not us).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let bump_lines = |s: &[char], from: usize, to: usize, line: &mut u32| {
        *line += s[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump_lines(&b, start, i, &mut line);
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident_char(&b, i) {
            if let Some((contents, end)) = try_raw_or_byte_string(&b, i) {
                let start = i;
                i = end;
                out.push(Token {
                    kind: Tok::Str(contents),
                    line,
                });
                bump_lines(&b, start, i, &mut line);
                continue;
            }
        }
        // Identifier / keyword.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Number (loose: digits plus alphanumerics, `.` only when followed
        // by a digit so `0..n` and `1.max(2)` keep their punctuation).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                if d == '_' || d.is_alphanumeric() {
                    i += 1;
                } else if d == '.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: Tok::Num(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Cooked string.
        if c == '"' {
            let start = i;
            let (contents, end) = cooked_string(&b, i);
            i = end;
            out.push(Token {
                kind: Tok::Str(contents),
                line,
            });
            bump_lines(&b, start, i, &mut line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // `'\x'`-style or `'c'`: a quote, an optionally-escaped char,
            // a closing quote. Anything else after `'` is a lifetime.
            let mut j = i + 1;
            if b.get(j) == Some(&'\\') {
                j += 2; // escape plus the escaped char
                        // Multi-char escapes (\x7f, \u{..}) — consume to the quote.
                while j < b.len() && b[j] != '\'' {
                    j += 1;
                }
                if j < b.len() {
                    i = j + 1;
                    out.push(Token {
                        kind: Tok::Char,
                        line,
                    });
                    continue;
                }
            } else if b.get(j + 1) == Some(&'\'') && b.get(j).is_some() {
                i = j + 2;
                out.push(Token {
                    kind: Tok::Char,
                    line,
                });
                continue;
            }
            // Lifetime: consume the ident part.
            i += 1;
            while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                i += 1;
            }
            out.push(Token {
                kind: Tok::Lifetime,
                line,
            });
            continue;
        }
        // Everything else: single punctuation char.
        out.push(Token {
            kind: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

fn prev_is_ident_char(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1] == '_' || b[i - 1].is_alphanumeric())
}

/// Consume a cooked string starting at the opening quote; returns
/// (contents, index past the closing quote).
fn cooked_string(b: &[char], start: usize) -> (String, usize) {
    let mut out = String::new();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            '\\' => {
                if let Some(&e) = b.get(i + 1) {
                    out.push(e);
                }
                i += 2;
            }
            '"' => return (out, i + 1),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i)
}

/// Try to consume `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"` starting
/// at `start`. Returns (contents, index past the end) on success.
fn try_raw_or_byte_string(b: &[char], start: usize) -> Option<(String, usize)> {
    let mut i = start;
    // Optional `b`/`c` prefix, optional `r`.
    if b[i] == 'b' || b[i] == 'c' {
        i += 1;
    }
    let raw = b.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    if !raw {
        // Plain byte string `b"…"` lexes like a cooked string.
        if b.get(i) == Some(&'"') && i > start {
            let (s, end) = cooked_string(b, i);
            return Some((s, end));
        }
        return None;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    let content_start = i;
    // Scan for `"` followed by `hashes` hash marks.
    while i < b.len() {
        if b[i] == '"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                let contents: String = b[content_start..i].iter().collect();
                return Some((contents, i + 1 + hashes));
            }
        }
        i += 1;
    }
    Some((b[content_start..].iter().collect(), b.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r###"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap::new()";
            let r = r#"thread_rng"#;
            let real = BTreeMap::new();
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let toks = lex("let c = 'x'; let n = '\\n'; fn f<'a>(x: &'a str) {}");
        let chars = toks.iter().filter(|t| t.kind == Tok::Char).count();
        let lifetimes = toks.iter().filter(|t| t.kind == Tok::Lifetime).count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"name("retry_fired")"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == Tok::Str("retry_fired".into())));
    }

    #[test]
    fn ranges_keep_their_dots() {
        // `0..count` must not swallow the dots into the number.
        let toks = lex("for i in 0..count {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn numeric_literals_carry_their_text_and_value() {
        let toks = lex("const OP: u8 = 4; let x = 0x2A; let f = 1.5; let big = 1_000u64;");
        let nums: Vec<Option<u64>> = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Num(_)))
            .map(|t| t.num_value())
            .collect();
        assert_eq!(nums, vec![Some(4), Some(42), None, Some(1000)]);
        assert!(toks.iter().any(|t| t.kind == Tok::Num("0x2A".into())));
    }

    #[test]
    fn method_calls_after_numbers() {
        let toks = lex("x.unwrap()");
        let ids = idents("x.unwrap()");
        assert_eq!(ids, vec!["x", "unwrap"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }
}
