//! Findings and their machine-readable report.
//!
//! The lint reuses the `ar-obs` [`RunReport`] shape rather than inventing a
//! parallel schema: rules become phases (with per-rule health verdicts),
//! finding totals become counters, and each non-allowlisted finding is an
//! `lint_finding` event. Anything that already consumes run reports —
//! CI artifact upload, the Markdown renderer, the drift tests — works on
//! lint output unchanged.

use ar_obs::{EventKind, Obs, RunReport};

pub const RULES: [&str; 9] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "CONFIG"];

/// One rule violation (or configuration problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `R1`…`R8`, or `CONFIG` for lint.toml problems.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line, or 0 when the finding has no single line.
    pub line: u32,
    /// The offending symbol (`HashMap`, `SystemTime::now`, an event kind…).
    pub symbol: String,
    pub message: String,
    /// `Some(reason)` when suppressed by a justified allowlist entry.
    pub allowed: Option<String>,
}

impl Finding {
    pub fn is_active(&self) -> bool {
        self.allowed.is_none()
    }

    /// Stable one-line rendering used in events and CLI output.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {} — {}",
            self.path, self.line, self.rule, self.symbol, self.message
        )
    }
}

/// The outcome of one lint pass over the workspace.
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    pub findings: Vec<Finding>,
    pub files_scanned: u64,
}

impl LintRun {
    /// Findings not suppressed by the allowlist — these fail the build.
    pub fn active(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.is_active()).collect()
    }

    /// Build the RunReport: counters per rule, one event per active
    /// finding, and a health verdict per rule.
    pub fn report(&self) -> RunReport {
        let obs = Obs::new();
        obs.add("lint.files_scanned", self.files_scanned);
        obs.add(
            "lint.allowlisted",
            self.findings.iter().filter(|f| !f.is_active()).count() as u64,
        );
        for rule in RULES {
            let phase = rule.to_ascii_lowercase();
            let active: Vec<&Finding> = self
                .findings
                .iter()
                .filter(|f| f.rule == rule && f.is_active())
                .collect();
            obs.add(&format!("lint.findings.{phase}"), active.len() as u64);
            for f in &active {
                obs.event(&phase, EventKind::LintFinding, None, 1, f.render());
            }
            if active.is_empty() {
                obs.set_phase_health(&phase, "ok", "");
            } else {
                obs.set_phase_health(
                    &phase,
                    "failed",
                    &format!("{} finding(s); first: {}", active.len(), active[0].render()),
                );
            }
        }
        obs.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintRun {
        LintRun {
            findings: vec![
                Finding {
                    rule: "R1",
                    path: "crates/core/src/x.rs".into(),
                    line: 7,
                    symbol: "HashMap".into(),
                    message: "unordered collection".into(),
                    allowed: None,
                },
                Finding {
                    rule: "R2",
                    path: "crates/bench/src/lib.rs".into(),
                    line: 101,
                    symbol: "Instant::now".into(),
                    message: "wall clock".into(),
                    allowed: Some("bench harness".into()),
                },
            ],
            files_scanned: 42,
        }
    }

    #[test]
    fn active_excludes_allowlisted() {
        let run = sample();
        assert_eq!(run.active().len(), 1);
        assert_eq!(run.active()[0].rule, "R1");
    }

    #[test]
    fn report_carries_counters_events_and_health() {
        let report = sample().report();
        assert_eq!(report.counters["lint.files_scanned"], 42);
        assert_eq!(report.counters["lint.allowlisted"], 1);
        assert_eq!(report.counters["lint.findings.r1"], 1);
        assert_eq!(report.counters["lint.findings.r2"], 0);
        assert_eq!(report.event_counts.get("lint_finding"), Some(&1));
        assert_eq!(report.health["r1"].status, "failed");
        assert_eq!(report.health["r2"].status, "ok");
        // The Markdown renderer accepts lint reports unchanged.
        let md = report.render_md();
        assert!(md.contains("lint_finding"));
        assert!(md.contains("| r1 | failed |"));
    }

    #[test]
    fn clean_run_reports_all_ok() {
        let report = LintRun {
            findings: vec![],
            files_scanned: 3,
        }
        .report();
        assert_eq!(report.total_events(), 0);
        assert!(report.health.values().all(|h| h.status == "ok"));
    }
}
