//! The graph-aware rules R5–R8, run over the workspace facts of pass 1.
//!
//! * **R5** — lock-order discipline: whenever one guard is held while a
//!   second is acquired (directly or through any call chain), the pair
//!   defines an edge in the workspace lock-order graph. Every edge that
//!   participates in a cycle — including the self-edge of re-acquiring a
//!   class already held — is a finding: two threads taking the same pair
//!   of locks in opposite orders is the classic ABBA deadlock.
//! * **R6** — atomic-ordering audit: `Ordering::Relaxed` on any atomic
//!   inside a function reachable from a serialization sink (`encode_*`,
//!   `stats_frame`, `report`). Values feeding artifacts or OP_STATS
//!   frames need Acquire/Release discipline so cross-thread increments
//!   are visible to the reader that serializes them; hot-path atomics
//!   not reachable from a sink may stay Relaxed.
//! * **R7** — wire-schema drift: every `OP_*` opcode byte in a `wire.rs`
//!   module must have a distinct value, be referenced by exactly one
//!   encode and one decode function, and come with an
//!   `encode_<op>_response` / `decode_<op>_response` pair whose scalar
//!   field counts match; response status bytes must agree between the
//!   encoders and the `response_body` decoder.
//! * **R8** — interprocedural entropy taint: a function that both
//!   touches an R2-banned source and returns a time/entropy-derived type
//!   is a taint source; so is any time-typed function that (transitively)
//!   calls one. Calling a source from non-exempt code is a finding
//!   unless the caller also invokes a `strip_timings`-style scrubber.

use crate::findings::Finding;
use crate::graph::{lock_order_edges, order_reachable, Workspace};
use crate::symbols::{FileFacts, FnFacts};
use std::collections::{BTreeMap, BTreeSet};

/// Serialization sinks for R6: the functions whose output becomes bytes
/// on the wire or in an artifact.
fn is_r6_sink(f: &FnFacts) -> bool {
    f.name.starts_with("encode_") || f.name == "stats_frame" || f.name == "report"
}

/// Types whose values carry wall-clock/entropy provenance (R8).
const R8_TAINT_TYPES: [&str; 4] = ["Instant", "SystemTime", "Duration", "RandomState"];

/// Caller paths exempt from R8: timing is these modules' business.
const R8_EXEMPT: [&str; 3] = ["crates/obs/", "crates/dht/src/udp.rs", "crates/bench/"];

/// R5: every lock-order edge that participates in a cycle.
pub fn rule_r5(ws: &Workspace<'_>) -> Vec<Finding> {
    let edges = lock_order_edges(ws);
    let mut out = Vec::new();
    for ((a, b), edge) in &edges {
        let cyclic = a == b || order_reachable(&edges, b).contains(a);
        if !cyclic {
            continue;
        }
        let how = match &edge.via {
            Some(callee) => format!("in `{}` via the call to `{callee}`", edge.holder),
            None => format!("directly in `{}`", edge.holder),
        };
        let message = if a == b {
            format!(
                "lock `{a}` is acquired again while already held ({how}); \
                 a non-reentrant guard self-deadlocks here"
            )
        } else {
            format!(
                "lock `{b}` is acquired while `{a}` is held ({how}), but another \
                 path orders them `{b}` before `{a}`; nested acquisitions must \
                 follow one canonical order or they ABBA-deadlock under load"
            )
        };
        out.push(Finding {
            rule: "R5",
            path: edge.path.clone(),
            line: edge.line,
            symbol: format!("{a}->{b}"),
            message,
            allowed: None,
        });
    }
    out
}

/// R6: Relaxed atomics reachable from a serialization sink.
pub fn rule_r6(ws: &Workspace<'_>) -> Vec<Finding> {
    let reachable = ws.reachable_from(is_r6_sink);
    let mut out = Vec::new();
    for (id, origin) in &reachable {
        let f = ws.fun(*id);
        for atomic in &f.atomics {
            if atomic.ordering != "Relaxed" {
                continue;
            }
            let sink = &ws.fun(*origin).name;
            let via = if f.name == *sink {
                format!("inside the serialization sink `{sink}`")
            } else {
                format!(
                    "in `{}`, reachable from the serialization sink `{sink}`",
                    f.name
                )
            };
            out.push(Finding {
                rule: "R6",
                path: ws.path(*id).to_string(),
                line: atomic.line,
                symbol: format!("{}.{}", atomic.receiver, atomic.op),
                message: format!(
                    "Ordering::Relaxed on `{}.{}` {via}; values feeding artifacts or \
                     OP_STATS frames need Acquire loads (Release/AcqRel writes) so \
                     cross-thread updates are visible to the serializer",
                    atomic.receiver, atomic.op
                ),
                allowed: None,
            });
        }
    }
    out
}

/// R7: wire-schema drift inside `wire.rs` modules.
pub fn rule_r7(files: &[FileFacts]) -> Vec<Finding> {
    let wire: Vec<&FileFacts> = files
        .iter()
        .filter(|f| f.path.ends_with("/wire.rs"))
        .collect();
    let mut out = Vec::new();
    for file in &wire {
        out.extend(check_wire_file(file));
    }
    out
}

fn check_wire_file(file: &FileFacts) -> Vec<Finding> {
    let mut out = Vec::new();
    let finding = |line: u32, symbol: String, message: String| Finding {
        rule: "R7",
        path: file.path.clone(),
        line,
        symbol,
        message,
        allowed: None,
    };

    let opcodes: Vec<_> = file
        .consts
        .iter()
        .filter(|c| c.name.starts_with("OP_"))
        .collect();

    // (a) Distinct opcode values.
    let mut seen: BTreeMap<u64, &str> = BTreeMap::new();
    for op in &opcodes {
        let Some(v) = op.value else { continue };
        match seen.get(&v) {
            Some(first) => out.push(finding(
                op.line,
                op.name.clone(),
                format!(
                    "opcode `{}` reuses wire value {v} already taken by `{first}`",
                    op.name
                ),
            )),
            None => {
                seen.insert(v, &op.name);
            }
        }
    }

    // (b) Exactly one encode and one decode site per opcode.
    for op in &opcodes {
        for (kind, prefix) in [("encode", "encode_"), ("decode", "decode_")] {
            let sites: Vec<&str> = file
                .fns
                .iter()
                .filter(|f| f.name.starts_with(prefix) && f.const_refs.contains(&op.name))
                .map(|f| f.name.as_str())
                .collect();
            if sites.len() != 1 {
                out.push(finding(
                    op.line,
                    op.name.clone(),
                    format!(
                        "opcode `{}` must appear in exactly one {kind} function, found {}{}",
                        op.name,
                        sites.len(),
                        if sites.is_empty() {
                            String::new()
                        } else {
                            format!(" ({})", sites.join(", "))
                        }
                    ),
                ));
            }
        }
    }

    // (c) + (d) Response encode/decode pairing and scalar field counts.
    for op in &opcodes {
        let stem = op.name.trim_start_matches("OP_").to_ascii_lowercase();
        let enc_name = format!("encode_{stem}_response");
        let dec_name = format!("decode_{stem}_response");
        let enc = file.fns.iter().find(|f| f.name == enc_name);
        let dec = file.fns.iter().find(|f| f.name == dec_name);
        for (fun, name) in [(&enc, &enc_name), (&dec, &dec_name)] {
            if fun.is_none() {
                out.push(finding(
                    op.line,
                    op.name.clone(),
                    format!("opcode `{}` has no `{name}` counterpart", op.name),
                ));
            }
        }
        if let (Some(enc), Some(dec)) = (enc, dec) {
            let wrote = encode_scalars(enc);
            let read = decode_scalars(dec);
            if wrote != read {
                out.push(finding(
                    enc.start_line,
                    enc_name.clone(),
                    format!(
                        "`{enc_name}` writes {wrote} scalar field(s) but `{dec_name}` \
                         reads {read}; the frame layouts have drifted apart"
                    ),
                ));
            }
        }
    }

    // (e) Status bytes: what encoders emit vs what `response_body` decodes.
    if let Some(body) = file.fns.iter().find(|f| f.name == "response_body") {
        let encoded: BTreeSet<u64> = file
            .fns
            .iter()
            .filter(|f| f.name.starts_with("encode_"))
            .flat_map(|f| f.vec_inits.iter().map(|(first, _, _)| *first))
            .collect();
        let decoded: BTreeSet<u64> = body.byte_literals.iter().copied().collect();
        for s in encoded.difference(&decoded) {
            out.push(finding(
                body.start_line,
                format!("status:{s}"),
                format!("status byte {s} is encoded but `response_body` never matches it"),
            ));
        }
        for s in decoded.difference(&encoded) {
            out.push(finding(
                body.start_line,
                format!("status:{s}"),
                format!("`response_body` matches status byte {s} that no encoder emits"),
            ));
        }
    }

    out
}

/// Scalar fields written by an encode fn: `to_be_bytes` conversions,
/// single-byte `push` calls, and the extra elements of the status-byte
/// `vec![…]` initializer.
fn encode_scalars(f: &FnFacts) -> usize {
    let calls = f
        .calls
        .iter()
        .filter(|c| c.name == "to_be_bytes" || c.name == "push")
        .count();
    let extras: usize = f.vec_inits.iter().map(|(_, extras, _)| *extras).sum();
    calls + extras
}

/// Scalar fields read by a decode fn: cursor `u8`/`u16`/`u32`/`u64` calls.
fn decode_scalars(f: &FnFacts) -> usize {
    f.calls
        .iter()
        .filter(|c| matches!(c.name.as_str(), "u8" | "u16" | "u32" | "u64"))
        .count()
}

/// R8: interprocedural entropy taint.
pub fn rule_r8(ws: &Workspace<'_>) -> Vec<Finding> {
    let all = ws.all_fns();
    let time_typed = |f: &FnFacts| f.ret.iter().any(|t| R8_TAINT_TYPES.contains(&t.as_str()));

    // Direct sources, then propagate through time-typed wrappers.
    let mut sources: BTreeSet<_> = all
        .iter()
        .copied()
        .filter(|id| {
            let f = ws.fun(*id);
            time_typed(f) && !f.entropy.is_empty()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in &all {
            if sources.contains(id) || !time_typed(ws.fun(*id)) {
                continue;
            }
            let calls_source = ws
                .fun(*id)
                .calls
                .iter()
                .any(|c| ws.resolve(*id, &c.name).iter().any(|t| sources.contains(t)));
            if calls_source {
                sources.insert(*id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for id in &all {
        if sources.contains(id) {
            continue; // propagators are typed as tainted — callers decide
        }
        let path = ws.path(*id);
        if R8_EXEMPT.iter().any(|p| path.starts_with(p)) {
            continue;
        }
        let f = ws.fun(*id);
        let scrubs = f.calls.iter().any(|c| c.name.contains("strip_timings"));
        if scrubs {
            continue;
        }
        for call in &f.calls {
            let tainted_callee = ws
                .resolve(*id, &call.name)
                .into_iter()
                .find(|t| sources.contains(t));
            if let Some(src) = tainted_callee {
                out.push(Finding {
                    rule: "R8",
                    path: path.to_string(),
                    line: call.line,
                    symbol: call.name.clone(),
                    message: format!(
                        "`{}` receives wall-clock/entropy-derived data from `{}` \
                         (taint flows through call edges from an R2 source); strip \
                         it with a `strip_timings`-style scrubber or keep it out of \
                         artifact-producing code",
                        f.name,
                        ws.fun(src).name
                    ),
                    allowed: None,
                });
            }
        }
    }
    out
}
