//! `ar-lint` CLI.
//!
//! ```text
//! cargo run -p ar-lint [-- --root DIR] [--report FILE]
//! cargo run -p ar-lint -- --explain R5     # rule rationale & policy
//! cargo run -p ar-lint -- --taxonomy      # README rule table (Markdown)
//! ```
//!
//! Scans the workspace, prints every active finding, optionally writes the
//! RunReport-shaped JSON findings report, and exits 1 when any
//! non-allowlisted finding remains.

use ar_lint::{explain, lint_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if let Some(rule) = flag("--explain") {
        return match explain_cmd(&rule) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ar-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    if args.iter().any(|a| a == "--taxonomy") {
        print!("{}", explain::taxonomy_table());
        return ExitCode::SUCCESS;
    }

    let root = flag("--root")
        .map(PathBuf::from)
        .unwrap_or_else(ar_lint::default_root);
    let report_path = flag("--report").map(PathBuf::from);

    let run = match lint_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("ar-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = run.report();
    if let Some(path) = &report_path {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("ar-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("ar-lint: wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("ar-lint: serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let active = run.active();
    let allowed = run.findings.len() - active.len();
    for f in &active {
        println!("{}", f.render());
    }
    eprintln!(
        "ar-lint: {} file(s) scanned, {} finding(s), {} allowlisted",
        run.files_scanned,
        active.len(),
        allowed
    );
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn explain_cmd(rule: &str) -> Result<String, String> {
    if rule.eq_ignore_ascii_case("all") {
        return Ok(explain::RULE_DOCS
            .iter()
            .map(explain::render)
            .collect::<Vec<_>>()
            .join("\n"));
    }
    explain::doc_for(rule).map(explain::render).ok_or_else(|| {
        format!(
            "unknown rule `{rule}`; known: {}",
            ar_lint::findings::RULES.join(", ")
        )
    })
}
