//! `ar-lint` CLI.
//!
//! ```text
//! cargo run -p ar-lint [-- --root DIR] [--report FILE]
//! ```
//!
//! Scans the workspace, prints every active finding, optionally writes the
//! RunReport-shaped JSON findings report, and exits 1 when any
//! non-allowlisted finding remains.

use ar_lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let root = flag("--root")
        .map(PathBuf::from)
        .unwrap_or_else(ar_lint::default_root);
    let report_path = flag("--report").map(PathBuf::from);

    let run = match lint_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("ar-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = run.report();
    if let Some(path) = &report_path {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("ar-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                eprintln!("ar-lint: wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("ar-lint: serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let active = run.active();
    let allowed = run.findings.len() - active.len();
    for f in &active {
        println!("{}", f.render());
    }
    eprintln!(
        "ar-lint: {} file(s) scanned, {} finding(s), {} allowlisted",
        run.files_scanned,
        active.len(),
        allowed
    );
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
