//! The four invariant rules, run over the token stream of each file.
//!
//! * **R1** — no `HashMap`/`HashSet` in artifact-producing crates: their
//!   iteration order is nondeterministic, and once one sits on a
//!   serialization or rendering path the golden-output byte-identity
//!   promise only holds probabilistically. `BTreeMap`/`BTreeSet` or a
//!   justified `lint.toml` allowlist entry are the ways out.
//! * **R2** — no ambient entropy or wall clocks (`thread_rng`,
//!   `rand::random`, `SystemTime::now`, `Instant::now`, `from_entropy`,
//!   `OsRng`, `getrandom`) outside `ar-obs` timing spans and the real-socket
//!   deadlines in `dht/udp.rs`. All randomness must flow from simnet's
//!   seeded RNG.
//! * **R3** — no `.unwrap()`/`.expect()`/`panic!` inside the configured
//!   panic scopes (the `Study::run` phase bodies and feed parsers, where
//!   fault-injected inputs arrive by design), except in `#[cfg(test)]`.
//! * **R4** — the `ar-obs` event taxonomy must agree in three places:
//!   the `EventKind` wire names, the README taxonomy table, and the set of
//!   kinds actually emitted in source.

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::{Tok, Token};

/// Crates whose artifacts must be byte-reproducible (R1 scope).
pub const ARTIFACT_CRATES: [&str; 8] = [
    "core",
    "blocklists",
    "atlas",
    "census",
    "crawler",
    "index",
    "survey",
    "serve",
];

/// Paths exempt from R2: ar-obs owns span timing, and the real-socket DHT
/// client needs genuine deadlines.
const R2_EXEMPT: [&str; 2] = ["crates/obs/", "crates/dht/src/udp.rs"];

pub(crate) const R2_BANNED_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
pub(crate) const R2_BANNED_PATHS: [(&str, &str); 3] = [
    ("rand", "random"),
    ("SystemTime", "now"),
    ("Instant", "now"),
];

/// Inclusive line ranges of `#[cfg(test)]`/`#[test]` items. Rules skip
/// lines covered by a range: test code may use unordered collections,
/// panics, whatever it likes.
pub fn test_mask(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut mask = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`. Only the
        // attribute *name* decides test-ness: `#[test]` itself, or a
        // `#[cfg(...)]` predicate mentioning `test`. `#[cfg_attr(test, …)]`
        // merely configures another attribute — the item still compiles
        // into the non-test build, so it must NOT be masked.
        let attr_line = tokens[i].line;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr_name: Option<&str> = None;
        let mut mentions_test = false;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(s) => {
                    if attr_name.is_none() {
                        attr_name = Some(s.as_str());
                    }
                    if s == "test" {
                        mentions_test = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = match attr_name {
            Some("test") => true,
            Some("cfg") => mentions_test,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The attributed item runs to its brace block's close, or to the
        // first top-level `;` for brace-less items (`use`, consts).
        let mut k = j + 1;
        let mut braces = 0usize;
        let mut end_line = attr_line;
        while k < tokens.len() {
            match &tokens[k].kind {
                Tok::Punct('{') => braces += 1,
                Tok::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        end_line = tokens[k].line;
                        break;
                    }
                }
                Tok::Punct(';') if braces == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        mask.push((attr_line, end_line));
        i = k + 1;
    }
    mask
}

pub fn masked(mask: &[(u32, u32)], line: u32) -> bool {
    mask.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// (name, first line, last line) of every `fn` with a body, nested ones
/// included. Signatures cannot contain `{`, so the first brace after the
/// name opens the body.
pub fn fn_spans(tokens: &[Token]) -> Vec<(String, u32, u32)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        let start_line = tokens[i].line;
        let mut j = i + 2;
        let mut braces = 0usize;
        let mut end_line = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                Tok::Punct(';') if braces == 0 => break, // trait method, no body
                Tok::Punct('{') => braces += 1,
                Tok::Punct('}') => {
                    braces -= 1;
                    if braces == 0 {
                        end_line = Some(tokens[j].line);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(end) = end_line {
            spans.push((name.to_string(), start_line, end));
        }
    }
    spans
}

/// R1: unordered std collections in artifact-producing crates.
pub fn rule_r1(path: &str, tokens: &[Token], mask: &[(u32, u32)]) -> Vec<Finding> {
    let in_scope = ARTIFACT_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")));
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for t in tokens {
        if masked(mask, t.line) {
            continue;
        }
        if let Some(sym) = t.ident().filter(|s| *s == "HashMap" || *s == "HashSet") {
            out.push(Finding {
                rule: "R1",
                path: path.to_string(),
                line: t.line,
                symbol: sym.to_string(),
                message: format!(
                    "unordered {sym} in an artifact-producing crate; iteration order is \
                     nondeterministic — use the BTree equivalent or add a justified \
                     lint.toml allow entry"
                ),
                allowed: None,
            });
        }
    }
    out
}

/// R2: ambient entropy / wall clocks outside the exempt modules.
pub fn rule_r2(path: &str, tokens: &[Token], mask: &[(u32, u32)]) -> Vec<Finding> {
    if R2_EXEMPT.iter().any(|p| path.starts_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut push = |line: u32, symbol: String| {
        out.push(Finding {
            rule: "R2",
            path: path.to_string(),
            line,
            symbol,
            message: "ambient entropy/wall-clock source; randomness must flow from \
                      simnet's seeded RNG and time from SimTime"
                .to_string(),
            allowed: None,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        if masked(mask, t.line) {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        if R2_BANNED_IDENTS.contains(&id) {
            push(t.line, id.to_string());
            continue;
        }
        // `A :: B` path patterns.
        for (a, b) in R2_BANNED_PATHS {
            if id == a
                && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
            {
                push(t.line, format!("{a}::{b}"));
            }
        }
    }
    out
}

/// R3: panics inside the configured panic scopes.
pub fn rule_r3(path: &str, tokens: &[Token], mask: &[(u32, u32)], config: &Config) -> Vec<Finding> {
    let Some(scope) = config.panic_scopes.iter().find(|s| s.path == path) else {
        return Vec::new();
    };
    // Whole file, or only the named functions' spans.
    let regions: Vec<(u32, u32)> = if scope.functions.is_empty() {
        vec![(1, u32::MAX)]
    } else {
        fn_spans(tokens)
            .into_iter()
            .filter(|(name, _, _)| scope.functions.iter().any(|f| f == name))
            .map(|(_, lo, hi)| (lo, hi))
            .collect()
    };
    let in_region = |line: u32| regions.iter().any(|&(lo, hi)| lo <= line && line <= hi);

    let mut out = Vec::new();
    let mut push = |line: u32, symbol: &str| {
        out.push(Finding {
            rule: "R3",
            path: path.to_string(),
            line,
            symbol: symbol.to_string(),
            message: "panic path in a fault-reachable scope; return a Result (or handle \
                      the damage via ar-obs damage events) instead"
                .to_string(),
            allowed: None,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        if masked(mask, t.line) || !in_region(t.line) {
            continue;
        }
        match t.ident() {
            Some("unwrap") | Some("expect") if i > 0 && tokens[i - 1].is_punct('.') => {
                // A method call, not a stray identifier.
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    push(t.line, t.ident().unwrap_or_default());
                }
            }
            Some("panic") if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                push(t.line, "panic!");
            }
            _ => {}
        }
    }
    out
}

/// Convert an `EventKind` variant name to its snake_case wire form.
pub fn snake_case(variant: &str) -> String {
    let mut out = String::new();
    for (i, c) in variant.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Collect `EventKind::Variant` references from a token stream as wire
/// names, with the line of first use.
pub fn emitted_kinds(tokens: &[Token], mask: &[(u32, u32)]) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if masked(mask, t.line) || !t.is_ident("EventKind") {
            continue;
        }
        if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(v) = tokens.get(i + 3).and_then(|t| t.ident()) {
                let wire = snake_case(v);
                if !out.iter().any(|(w, _)| *w == wire) {
                    out.push((wire, t.line));
                }
            }
        }
    }
    out
}

/// The canonical wire names: the string literals inside
/// `EventKind::name()` in `crates/obs/src/event.rs`.
pub fn wire_names_from_event_rs(tokens: &[Token]) -> Vec<String> {
    // Find the `fn name` span and take every string literal inside it.
    let spans = fn_spans(tokens);
    let Some((_, lo, hi)) = spans.into_iter().find(|(n, _, _)| n == "name") else {
        return Vec::new();
    };
    tokens
        .iter()
        .filter(|t| t.line >= lo && t.line <= hi)
        .filter_map(|t| match &t.kind {
            Tok::Str(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Event kinds listed in the README taxonomy table: the backticked names
/// in the first column, rows like `` | `a` / `b` | … | `` listing two.
pub fn kinds_from_readme(md: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    let mut in_table = false;
    for (idx, line) in md.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if line.contains("Event taxonomy") {
            in_section = true;
            continue;
        }
        if !in_section {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with('|') {
            in_table = true;
            let cells: Vec<&str> = trimmed.split('|').collect();
            let Some(first) = cells.get(1) else { continue };
            // Skip the header and separator rows.
            if first.contains("---") || first.trim() == "kind" {
                continue;
            }
            // Every backticked span in the first cell is a kind name.
            let mut rest = *first;
            while let Some(open) = rest.find('`') {
                let tail = &rest[open + 1..];
                let Some(close) = tail.find('`') else { break };
                let name = &tail[..close];
                if !name.is_empty() {
                    out.push((name.to_string(), lineno));
                }
                rest = &tail[close + 1..];
            }
        } else if in_table {
            break; // table ended
        }
    }
    out
}

/// R4: three-way drift check between the EventKind wire names, the README
/// taxonomy table, and the kinds actually emitted in source.
pub fn rule_r4(
    wire_names: &[String],
    readme_kinds: &[(String, u32)],
    emitted: &[(String, String, u32)], // (wire name, path, line)
    readme_path: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let in_readme = |k: &str| readme_kinds.iter().any(|(n, _)| n == k);
    let in_enum = |k: &str| wire_names.iter().any(|n| n == k);

    for kind in wire_names {
        if !in_readme(kind) {
            out.push(Finding {
                rule: "R4",
                path: readme_path.to_string(),
                line: 0,
                symbol: kind.clone(),
                message: format!(
                    "event kind `{kind}` is defined in ar-obs but missing from the README \
                     event-taxonomy table"
                ),
                allowed: None,
            });
        }
    }
    for (kind, lineno) in readme_kinds {
        if !in_enum(kind) {
            out.push(Finding {
                rule: "R4",
                path: readme_path.to_string(),
                line: *lineno,
                symbol: kind.clone(),
                message: format!(
                    "README event-taxonomy table lists `{kind}`, which is not an ar-obs \
                     EventKind wire name"
                ),
                allowed: None,
            });
        }
    }
    for (kind, path, line) in emitted {
        if !in_readme(kind) && in_enum(kind) {
            // Only report emission drift once the kind exists; unknown
            // kinds would not compile and are covered above via the enum.
            out.push(Finding {
                rule: "R4",
                path: path.clone(),
                line: *line,
                symbol: kind.clone(),
                message: format!(
                    "source emits event kind `{kind}` but the README event-taxonomy table \
                     does not document it"
                ),
                allowed: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mask_covers_test_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let toks = lex(src);
        let mask = test_mask(&toks);
        assert_eq!(mask, vec![(2, 5)]);
        assert!(!masked(&mask, 1));
        assert!(masked(&mask, 4));
        assert!(!masked(&mask, 6));
    }

    #[test]
    fn cfg_attr_test_does_not_mask_live_code() {
        // `#[cfg_attr(test, allow(dead_code))]` compiles into the non-test
        // build; only `#[test]` / `#[cfg(test)]` (and predicates like
        // `#[cfg(all(test, …))]`) mask their item.
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn live() { let h = HashMap::new(); }\n\
                   #[cfg(all(test, feature = \"x\"))]\nfn gated() {}\n";
        let mask = test_mask(&lex(src));
        assert!(!masked(&mask, 2), "cfg_attr item wrongly masked: {mask:?}");
        assert!(
            masked(&mask, 4),
            "cfg(all(test,…)) item not masked: {mask:?}"
        );
    }

    #[test]
    fn fn_spans_find_nested_bodies() {
        let src = "fn outer() {\n  fn inner() { let x = 1; }\n  inner();\n}\n";
        let spans = fn_spans(&lex(src));
        assert_eq!(spans.len(), 2);
        assert!(spans.contains(&("outer".into(), 1, 4)));
        assert!(spans.contains(&("inner".into(), 2, 2)));
    }

    #[test]
    fn snake_case_matches_serde() {
        assert_eq!(snake_case("RetryFired"), "retry_fired");
        assert_eq!(snake_case("AsBlackoutEntered"), "as_blackout_entered");
        assert_eq!(snake_case("LintFinding"), "lint_finding");
    }

    #[test]
    fn r1_scopes_to_artifact_crates() {
        let toks = lex("use std::collections::HashMap;\n");
        assert_eq!(rule_r1("crates/core/src/x.rs", &toks, &[]).len(), 1);
        assert_eq!(rule_r1("crates/simnet/src/x.rs", &toks, &[]).len(), 0);
        assert_eq!(rule_r1("crates/bench/src/x.rs", &toks, &[]).len(), 0);
    }

    #[test]
    fn r2_exempts_obs_and_udp() {
        let toks = lex("let d = Instant::now();\n");
        assert_eq!(rule_r2("crates/core/src/x.rs", &toks, &[]).len(), 1);
        assert_eq!(rule_r2("crates/obs/src/lib.rs", &toks, &[]).len(), 0);
        assert_eq!(rule_r2("crates/dht/src/udp.rs", &toks, &[]).len(), 0);
    }

    #[test]
    fn r3_only_fires_in_scoped_functions() {
        let src = "fn safe() { x.unwrap(); }\nfn guarded() { y.expect(\"m\"); }\n";
        let toks = lex(src);
        let config =
            Config::parse("[[panic_scope]]\npath = \"p.rs\"\nfunctions = \"guarded\"\n").unwrap();
        let f = rule_r3("p.rs", &toks, &[], &config);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].symbol, "expect");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn readme_parser_splits_double_rows() {
        let md = "Event taxonomy:\n\n| kind | phase |\n|---|---|\n| `a_x` | p |\n| `b_y` / `c_z` | q |\n\nafter\n";
        let kinds: Vec<String> = kinds_from_readme(md).into_iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["a_x", "b_y", "c_z"]);
    }
}
