//! The graph rules linted: R5–R8 must fire on their deliberately
//! violating fixtures and stay silent on the clean twins, through the
//! full two-pass pipeline (`analyze_sources`). A rule that stops firing
//! is itself a regression.

use ar_lint::{analyze_sources, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Analyze one fixture as if it lived at `path` in the workspace.
fn analyze(path: &str, name: &str) -> Vec<Finding> {
    analyze_sources(&[(path, &fixture(name))])
}

fn rule_symbols(findings: &[Finding], rule: &str) -> Vec<String> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.symbol.clone())
        .collect()
}

// ---- R5: lock-order discipline ----

#[test]
fn r5_fires_on_interleaved_abba() {
    let findings = analyze("crates/serve/src/telemetry.rs", "r5_bad_a.rs");
    let symbols = rule_symbols(&findings, "R5");
    assert!(
        symbols.contains(&"serve::ring->serve::slo".to_string()),
        "{symbols:?}"
    );
    assert!(
        symbols.contains(&"serve::slo->serve::ring".to_string()),
        "{symbols:?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("ABBA")));
}

#[test]
fn r5_fires_on_reacquisition_through_a_helper() {
    let findings = analyze("crates/serve/src/registry.rs", "r5_bad_b.rs");
    let symbols = rule_symbols(&findings, "R5");
    assert_eq!(symbols, vec!["serve::entries->serve::entries"]);
    let f = findings.iter().find(|f| f.rule == "R5").unwrap();
    assert!(f.message.contains("already held"), "{}", f.message);
    assert!(
        f.message.contains("via the call to `flush`"),
        "{}",
        f.message
    );
}

#[test]
fn r5_stays_silent_on_the_clean_twins() {
    for name in ["r5_ok_a.rs", "r5_ok_b.rs"] {
        let findings = analyze("crates/serve/src/telemetry.rs", name);
        assert!(
            rule_symbols(&findings, "R5").is_empty(),
            "{name}: {findings:?}"
        );
    }
}

#[test]
fn r5_sees_opposite_orders_across_files() {
    // The two halves of the ABBA live in different files of one crate;
    // only the workspace-level graph can connect them.
    let a = "impl T { pub fn close(&self) { let ring = self.ring.lock(); \
             let slo = self.slo.lock(); let _ = (ring, slo); } }\n";
    let b = "impl T { pub fn eval(&self) { let slo = self.slo.lock(); \
             let ring = self.ring.lock(); let _ = (slo, ring); } }\n";
    let findings = analyze_sources(&[
        ("crates/serve/src/window.rs", a),
        ("crates/serve/src/slo.rs", b),
    ]);
    assert_eq!(rule_symbols(&findings, "R5").len(), 2, "{findings:?}");
}

// ---- R6: atomic-ordering audit ----

#[test]
fn r6_fires_on_relaxed_inside_a_sink() {
    let findings = analyze("crates/obs/src/lib.rs", "r6_bad_a.rs");
    let symbols = rule_symbols(&findings, "R6");
    assert_eq!(symbols, vec!["v.load"]);
    let f = findings.iter().find(|f| f.rule == "R6").unwrap();
    assert!(f.message.contains("`report`"), "{}", f.message);
}

#[test]
fn r6_fires_on_relaxed_reachable_from_an_encoder() {
    let findings = analyze("crates/serve/src/stats.rs", "r6_bad_b.rs");
    let symbols = rule_symbols(&findings, "R6");
    assert_eq!(symbols, vec!["depth.load"]);
    let f = findings.iter().find(|f| f.rule == "R6").unwrap();
    assert!(
        f.message.contains("`encode_stats_response`"),
        "{}",
        f.message
    );
}

#[test]
fn r6_stays_silent_on_the_clean_twins() {
    // ok_a: same sinks, Acquire discipline. ok_b: Relaxed is fine on a
    // hot path no serialization sink can reach.
    for name in ["r6_ok_a.rs", "r6_ok_b.rs"] {
        let findings = analyze("crates/serve/src/stats.rs", name);
        assert!(
            rule_symbols(&findings, "R6").is_empty(),
            "{name}: {findings:?}"
        );
    }
}

// ---- R7: wire-schema drift ----

#[test]
fn r7_fires_on_a_half_implemented_opcode() {
    let findings = analyze("crates/serve/src/wire.rs", "r7_bad_a.rs");
    let r7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R7").collect();
    assert_eq!(r7.len(), 3, "{r7:?}");
    assert!(r7.iter().all(|f| f.symbol == "OP_PING"), "{r7:?}");
    assert!(r7.iter().any(|f| f.message.contains("exactly one decode")));
    assert!(r7
        .iter()
        .any(|f| f.message.contains("no `encode_ping_response`")));
    assert!(r7
        .iter()
        .any(|f| f.message.contains("no `decode_ping_response`")));
}

#[test]
fn r7_fires_on_field_count_and_status_byte_drift() {
    let findings = analyze("crates/serve/src/wire.rs", "r7_bad_b.rs");
    let r7: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R7").collect();
    assert_eq!(r7.len(), 3, "{r7:?}");
    assert!(r7
        .iter()
        .any(|f| f.message.contains("writes 2 scalar field(s)") && f.message.contains("reads 1")));
    assert!(r7
        .iter()
        .any(|f| f.symbol == "status:3" && f.message.contains("never matches")));
    assert!(r7
        .iter()
        .any(|f| f.symbol == "status:1" && f.message.contains("no encoder emits")));
}

#[test]
fn r7_fires_on_duplicate_opcode_values() {
    let src = "pub const OP_A: u8 = 7;\npub const OP_B: u8 = 7;\n\
               fn encode_a(o: &mut Vec<u8>) { o.push(OP_A); }\n\
               fn decode_a(b: u8) -> bool { b == OP_A }\n\
               fn encode_b(o: &mut Vec<u8>) { o.push(OP_B); }\n\
               fn decode_b(b: u8) -> bool { b == OP_B }\n\
               fn encode_a_response() -> Vec<u8> { vec![0u8] }\n\
               fn decode_a_response(c: &mut Cursor) -> u8 { c.done() }\n\
               fn encode_b_response() -> Vec<u8> { vec![0u8] }\n\
               fn decode_b_response(c: &mut Cursor) -> u8 { c.done() }\n";
    let findings = analyze_sources(&[("crates/serve/src/wire.rs", src)]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "R7" && f.symbol == "OP_B" && f.message.contains("reuses")),
        "{findings:?}"
    );
}

#[test]
fn r7_stays_silent_on_the_clean_twins_and_non_wire_files() {
    for name in ["r7_ok_a.rs", "r7_ok_b.rs"] {
        let findings = analyze("crates/serve/src/wire.rs", name);
        assert!(
            rule_symbols(&findings, "R7").is_empty(),
            "{name}: {findings:?}"
        );
    }
    // The same drifted source outside a wire.rs module is out of scope.
    let findings = analyze("crates/serve/src/frames.rs", "r7_bad_a.rs");
    assert!(rule_symbols(&findings, "R7").is_empty(), "{findings:?}");
}

// ---- R8: interprocedural entropy taint ----

#[test]
fn r8_fires_on_a_laundered_wall_clock() {
    let findings = analyze("crates/core/src/render.rs", "r8_bad_a.rs");
    let symbols = rule_symbols(&findings, "R8");
    assert_eq!(symbols, vec!["lap"]);
    let f = findings.iter().find(|f| f.rule == "R8").unwrap();
    assert!(f.message.contains("`render_summary`"), "{}", f.message);
}

#[test]
fn r8_taint_crosses_two_call_edges() {
    let findings = analyze("crates/core/src/artifact.rs", "r8_bad_b.rs");
    let symbols = rule_symbols(&findings, "R8");
    assert_eq!(symbols, vec!["elapsed_since_start"]);
}

#[test]
fn r8_stays_silent_on_the_clean_twins() {
    // ok_a scrubs with strip_timings; ok_b's Duration is built from the
    // logical clock and never touches an entropy source.
    for name in ["r8_ok_a.rs", "r8_ok_b.rs"] {
        let findings = analyze("crates/core/src/render.rs", name);
        assert!(
            rule_symbols(&findings, "R8").is_empty(),
            "{name}: {findings:?}"
        );
    }
}

#[test]
fn r8_respects_the_exempt_paths() {
    for path in [
        "crates/obs/src/span.rs",
        "crates/dht/src/udp.rs",
        "crates/bench/src/bin/bench_study.rs",
    ] {
        let findings = analyze(path, "r8_bad_a.rs");
        assert!(
            rule_symbols(&findings, "R8").is_empty(),
            "{path} should be exempt: {findings:?}"
        );
    }
}

// ---- Lexer blind spots: both passes stay silent ----

#[test]
fn lexer_blindspots_produce_no_findings_in_either_pass() {
    let src = fixture("lexer_blindspots.rs");
    // Pass 1 (token rules) under an artifact-crate path.
    let (findings, _) = ar_lint::scan_source(
        "crates/core/src/frame.rs",
        &src,
        &ar_lint::Config::default(),
    );
    assert!(findings.is_empty(), "token pass: {findings:?}");
    // Pass 2 (graph rules).
    let findings = analyze_sources(&[("crates/core/src/frame.rs", &src)]);
    assert!(findings.is_empty(), "graph pass: {findings:?}");
}

#[test]
fn lexer_blindspots_do_not_derail_fact_extraction() {
    // Silence must come from correct lexing, not from the extractor
    // losing the plot: all five live functions are still seen.
    let tokens = ar_lint::lexer::lex(&fixture("lexer_blindspots.rs"));
    let facts = ar_lint::FileFacts::extract("crates/core/src/frame.rs", &tokens);
    let names: Vec<&str> = facts.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "doc_example",
            "raw_with_hashes",
            "cooked",
            "lifetimes_are_not_chars",
            "nested_generics"
        ]
    );
    // The cfg_attr(test, …) attribute on the struct must not mask the
    // impl below it (the stale-mask regression).
    assert!(facts.fns.iter().all(|f| f.entropy.is_empty()));
}
