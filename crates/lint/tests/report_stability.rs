//! The lint JSON report must be byte-identical across runs: every rule
//! walks BTree containers in index order, so two scans of the same tree
//! cannot differ. Five runs guard against any ordering nondeterminism
//! sneaking into the new graph pass.

use ar_lint::lint_workspace;

#[test]
fn five_runs_serialize_to_identical_bytes() {
    let root = ar_lint::default_root();
    let baseline = {
        let run = lint_workspace(&root).expect("lint run");
        serde_json::to_string_pretty(&run.report()).expect("serialize")
    };
    assert!(!baseline.is_empty());
    for attempt in 1..5 {
        let run = lint_workspace(&root).expect("lint run");
        let json = serde_json::to_string_pretty(&run.report()).expect("serialize");
        assert_eq!(json, baseline, "report drifted on run {attempt}");
    }
}
