//! The lint linted: every rule must fire on its deliberately-violating
//! fixture and stay silent on the clean twin. A rule that stops firing is
//! itself a regression — the fixtures keep the linter tested, not trusted.

use ar_lint::rules;
use ar_lint::{scan_source, Config};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Fixtures are scanned as if they lived in an artifact-producing crate.
const AS_PATH: &str = "crates/core/src/fixture.rs";

fn rule_findings(rule: &str, name: &str, config: &Config) -> Vec<String> {
    let (findings, _) = scan_source(AS_PATH, &fixture(name), config);
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.symbol.clone())
        .collect()
}

#[test]
fn r1_fires_on_bad_fixture_and_not_on_twin() {
    let config = Config::default();
    let bad = rule_findings("R1", "r1_bad.rs", &config);
    assert!(bad.contains(&"HashMap".to_string()), "bad: {bad:?}");
    assert!(bad.contains(&"HashSet".to_string()), "bad: {bad:?}");
    assert!(bad.len() >= 4, "both use and construction sites: {bad:?}");
    let ok = rule_findings("R1", "r1_ok.rs", &config);
    assert!(ok.is_empty(), "clean twin flagged: {ok:?}");
}

#[test]
fn r1_ignores_non_artifact_crates() {
    let (findings, _) = scan_source(
        "crates/simnet/src/fixture.rs",
        &fixture("r1_bad.rs"),
        &Config::default(),
    );
    assert!(findings.iter().all(|f| f.rule != "R1"));
}

#[test]
fn r2_fires_on_bad_fixture_and_not_on_twin() {
    let config = Config::default();
    let bad = rule_findings("R2", "r2_bad.rs", &config);
    for sym in [
        "thread_rng",
        "rand::random",
        "SystemTime::now",
        "Instant::now",
    ] {
        assert!(bad.contains(&sym.to_string()), "missing {sym}: {bad:?}");
    }
    let ok = rule_findings("R2", "r2_ok.rs", &config);
    assert!(ok.is_empty(), "clean twin flagged: {ok:?}");
}

#[test]
fn r2_respects_the_exempt_paths() {
    for path in ["crates/obs/src/fixture.rs", "crates/dht/src/udp.rs"] {
        let (findings, _) = scan_source(path, &fixture("r2_bad.rs"), &Config::default());
        assert!(findings.iter().all(|f| f.rule != "R2"), "{path} not exempt");
    }
}

#[test]
fn r3_fires_on_bad_fixture_and_not_on_twin() {
    let config = Config::parse(&format!(
        "[[panic_scope]]\npath = \"{AS_PATH}\"\nfunctions = \"parse_feed\"\n"
    ))
    .unwrap();
    let bad = rule_findings("R3", "r3_bad.rs", &config);
    for sym in ["unwrap", "expect", "panic!"] {
        assert!(bad.contains(&sym.to_string()), "missing {sym}: {bad:?}");
    }
    let ok = rule_findings("R3", "r3_ok.rs", &config);
    assert!(ok.is_empty(), "clean twin flagged: {ok:?}");
}

#[test]
fn r3_is_silent_without_a_matching_scope() {
    let (findings, _) = scan_source(AS_PATH, &fixture("r3_bad.rs"), &Config::default());
    assert!(findings.iter().all(|f| f.rule != "R3"));
}

#[test]
fn r4_fires_on_drifted_readme_and_not_on_synced_one() {
    let event_tokens = ar_lint::lexer::lex(&fixture("r4_event.rs"));
    let wire_names = rules::wire_names_from_event_rs(&event_tokens);
    assert_eq!(
        wire_names,
        vec![
            "retry_fired",
            "phase_failed",
            "slo_breach",
            "slo_recovered",
            "stats_served",
            "trace_sampled"
        ]
    );

    let emit_tokens = ar_lint::lexer::lex(&fixture("r4_emit.rs"));
    let emitted: Vec<(String, String, u32)> = rules::emitted_kinds(&emit_tokens, &[])
        .into_iter()
        .map(|(kind, line)| (kind, "crates/core/src/emit.rs".to_string(), line))
        .collect();
    assert_eq!(emitted.len(), 4);

    let bad = rules::rule_r4(
        &wire_names,
        &rules::kinds_from_readme(&fixture("r4_readme_bad.md")),
        &emitted,
        "README.md",
    );
    // phase_failed, slo_recovered and stats_served missing from the
    // table; ghost_event documented but undefined; phase_failed and
    // stats_served also emitted without documentation.
    let symbols: Vec<&str> = bad.iter().map(|f| f.symbol.as_str()).collect();
    assert!(symbols.contains(&"phase_failed"), "{symbols:?}");
    assert!(symbols.contains(&"ghost_event"), "{symbols:?}");
    assert!(symbols.contains(&"slo_recovered"), "{symbols:?}");
    assert!(symbols.contains(&"stats_served"), "{symbols:?}");
    assert!(bad.len() >= 5, "{bad:?}");

    let ok = rules::rule_r4(
        &wire_names,
        &rules::kinds_from_readme(&fixture("r4_readme_ok.md")),
        &emitted,
        "README.md",
    );
    assert!(ok.is_empty(), "synced taxonomy flagged: {ok:?}");
}

#[test]
fn allowlist_needs_exact_match_and_justification() {
    let config = Config::parse(&format!(
        "[[allow]]\nrule = \"R1\"\npath = \"{AS_PATH}\"\nsymbol = \"HashMap\"\nreason = \"fixture: lookup only\"\n"
    ))
    .unwrap();
    let (mut findings, _) = scan_source(AS_PATH, &fixture("r1_bad.rs"), &config);
    ar_lint::apply_allowlist(&mut findings, &config);
    // HashMap suppressed, HashSet still active.
    assert!(findings
        .iter()
        .any(|f| f.symbol == "HashMap" && !f.is_active()));
    assert!(findings
        .iter()
        .any(|f| f.symbol == "HashSet" && f.is_active()));
}

#[test]
fn wrong_rule_allowlist_entry_is_flagged_as_a_near_miss() {
    // The entry matches a real finding's path+symbol but names the wrong
    // rule: it must suppress nothing, and the CONFIG finding must say
    // which rule the real finding actually carries.
    let config = Config::parse(&format!(
        "[[allow]]\nrule = \"R2\"\npath = \"{AS_PATH}\"\nsymbol = \"HashMap\"\nreason = \"mislabelled\"\n"
    ))
    .unwrap();
    let (mut findings, _) = scan_source(AS_PATH, &fixture("r1_bad.rs"), &config);
    ar_lint::apply_allowlist(&mut findings, &config);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "R1" && f.symbol == "HashMap" && f.is_active()),
        "the mislabelled entry must not suppress the R1 finding"
    );
    let near_miss = findings.iter().find(|f| f.rule == "CONFIG").unwrap();
    assert!(near_miss.message.contains("is R1"), "{}", near_miss.message);
    assert!(
        near_miss.message.contains("currently R2"),
        "{}",
        near_miss.message
    );
}
