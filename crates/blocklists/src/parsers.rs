//! On-disk blocklist formats.
//!
//! Real feeds come in a handful of textual formats; these parsers let the
//! pipeline ingest genuine snapshot files (and render simulated snapshots
//! in the same formats, which the round-trip tests and the `live_feeds`
//! example exercise).
//!
//! Supported:
//! * **plain** — one IPv4 per line, `#`/`;` comments (Nixspam, Greensnow,
//!   CINSscore, …);
//! * **cidr** — addresses and/or `a.b.c.d/nn` ranges (Spamhaus DROP-like,
//!   Emerging Threats fwrules);
//! * **dshield** — the DShield "block" column format: tab-separated
//!   `start<TAB>end<TAB>netmask[<TAB>attacks…]` records with a commented
//!   header.

use std::fmt;
use std::net::Ipv4Addr;

/// A parsed feed entry: a single address or a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedEntry {
    Addr(Ipv4Addr),
    /// CIDR block (prefix length 0–32).
    Cidr(Ipv4Addr, u8),
    /// Inclusive range (DShield style).
    Range(Ipv4Addr, Ipv4Addr),
}

impl FeedEntry {
    /// Number of addresses the entry covers.
    pub fn size(&self) -> u64 {
        match self {
            FeedEntry::Addr(_) => 1,
            FeedEntry::Cidr(_, len) => 1u64 << (32 - u32::from(*len)),
            FeedEntry::Range(a, b) => {
                u64::from(u32::from(*b)).saturating_sub(u64::from(u32::from(*a))) + 1
            }
        }
    }

    /// Does the entry cover `ip`?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        match self {
            FeedEntry::Addr(a) => *a == ip,
            FeedEntry::Cidr(net, len) => {
                let mask = if *len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(*len))
                };
                (u32::from(ip) & mask) == (u32::from(*net) & mask)
            }
            FeedEntry::Range(a, b) => (u32::from(*a)..=u32::from(*b)).contains(&u32::from(ip)),
        }
    }

    /// Expand to individual addresses (guard against huge blocks before
    /// calling).
    pub fn addrs(&self) -> Box<dyn Iterator<Item = Ipv4Addr>> {
        match *self {
            FeedEntry::Addr(a) => Box::new(std::iter::once(a)),
            FeedEntry::Cidr(net, len) => {
                let mask = if len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(len))
                };
                let base = u32::from(net) & mask;
                let count = 1u64 << (32 - u32::from(len));
                Box::new((0..count).map(move |i| Ipv4Addr::from(base + i as u32)))
            }
            FeedEntry::Range(a, b) => Box::new((u32::from(a)..=u32::from(b)).map(Ipv4Addr::from)),
        }
    }
}

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn strip_comment(line: &str) -> &str {
    let end = line.find(['#', ';']).unwrap_or(line.len());
    line[..end].trim()
}

/// Outcome of a damage-tolerant parse: every row that parsed plus the
/// per-line failures, so one corrupt row costs one entry, not the whole
/// snapshot. Fault-injected and real-world pulls both reach this path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedParse {
    pub addrs: Vec<Ipv4Addr>,
    pub errors: Vec<ParseError>,
}

impl FeedParse {
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Count rejected rows through the same channel the faulted snapshot
    /// pipeline uses: `blocklists.rows_lost` plus one aggregated
    /// `feed_snapshot_damaged` event carrying the first failure.
    pub fn record_obs(&self, obs: &ar_obs::Obs, feed: &str) {
        if self.errors.is_empty() || !obs.enabled() {
            return;
        }
        obs.add("blocklists.rows_lost", self.errors.len() as u64);
        let first = &self.errors[0];
        obs.event(
            "blocklists",
            ar_obs::EventKind::FeedSnapshotDamaged,
            None,
            self.errors.len() as u64,
            format!(
                "{feed}: {} unparsable row(s); first: {first}",
                self.errors.len()
            ),
        );
    }
}

/// Damage-tolerant variant of [`parse_plain`]: never fails, collects
/// per-line errors instead.
pub fn parse_plain_tolerant(input: &str) -> FeedParse {
    let mut out = FeedParse::default();
    for (i, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        match line.parse::<Ipv4Addr>() {
            Ok(ip) => out.addrs.push(ip),
            Err(e) => out.errors.push(ParseError {
                line: i + 1,
                message: format!("bad address {line:?}: {e}"),
            }),
        }
    }
    out
}

/// Parse the plain one-address-per-line format.
pub fn parse_plain(input: &str) -> Result<Vec<Ipv4Addr>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let ip: Ipv4Addr = line.parse().map_err(|e| ParseError {
            line: i + 1,
            message: format!("bad address {line:?}: {e}"),
        })?;
        out.push(ip);
    }
    Ok(out)
}

/// Parse the CIDR-capable format (bare addresses are /32).
pub fn parse_cidr(input: &str) -> Result<Vec<FeedEntry>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseError {
            line: i + 1,
            message,
        };
        match line.split_once('/') {
            Some((addr, len)) => {
                let ip: Ipv4Addr = addr
                    .trim()
                    .parse()
                    .map_err(|e| err(format!("bad network {addr:?}: {e}")))?;
                let len: u8 = len
                    .trim()
                    .parse()
                    .map_err(|e| err(format!("bad prefix length {len:?}: {e}")))?;
                if len > 32 {
                    return Err(err(format!("prefix length {len} out of range")));
                }
                out.push(FeedEntry::Cidr(ip, len));
            }
            None => {
                let ip: Ipv4Addr = line
                    .parse()
                    .map_err(|e| err(format!("bad address {line:?}: {e}")))?;
                out.push(FeedEntry::Addr(ip));
            }
        }
    }
    Ok(out)
}

/// Parse the DShield block format.
pub fn parse_dshield(input: &str) -> Result<Vec<FeedEntry>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let err = |message: String| ParseError {
            line: i + 1,
            message,
        };
        let start: Ipv4Addr = fields
            .next()
            .ok_or_else(|| err("missing start".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad start address: {e}")))?;
        let end: Ipv4Addr = fields
            .next()
            .ok_or_else(|| err("missing end".into()))?
            .trim()
            .parse()
            .map_err(|e| err(format!("bad end address: {e}")))?;
        if u32::from(end) < u32::from(start) {
            return Err(err(format!("inverted range {start}-{end}")));
        }
        out.push(FeedEntry::Range(start, end));
    }
    Ok(out)
}

/// Render a plain feed file (sorted, with a provenance header).
pub fn render_plain(name: &str, addrs: &[Ipv4Addr]) -> String {
    let mut sorted = addrs.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut out = format!("# {name}\n# entries: {}\n", sorted.len());
    for ip in sorted {
        out.push_str(&ip.to_string());
        out.push('\n');
    }
    out
}

/// Render a DShield-format file from /24-aggregated ranges.
pub fn render_dshield(name: &str, entries: &[FeedEntry]) -> String {
    let mut out = format!("# DShield.org recommended block list — {name}\n# start\tend\tnetmask\n");
    for e in entries {
        match e {
            FeedEntry::Range(a, b) => out.push_str(&format!("{a}\t{b}\t24\n")),
            FeedEntry::Addr(a) => out.push_str(&format!("{a}\t{a}\t32\n")),
            FeedEntry::Cidr(net, len) => {
                let mask = if *len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(*len))
                };
                let base = u32::from(*net) & mask;
                let last = base | !mask;
                out.push_str(&format!(
                    "{}\t{}\t{len}\n",
                    Ipv4Addr::from(base),
                    Ipv4Addr::from(last)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip_with_comments() {
        let text = "# header\n192.0.2.1\n ; note\n192.0.2.2 # trailing\n\n192.0.2.1\n";
        let addrs = parse_plain(text).unwrap();
        assert_eq!(addrs.len(), 3);
        let rendered = render_plain("test", &addrs);
        let back = parse_plain(&rendered).unwrap();
        let expected: Vec<Ipv4Addr> =
            vec!["192.0.2.1".parse().unwrap(), "192.0.2.2".parse().unwrap()];
        assert_eq!(back, expected);
    }

    #[test]
    fn plain_rejects_garbage_with_line_numbers() {
        let err = parse_plain("192.0.2.1\nnot-an-ip\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not-an-ip"));
    }

    #[test]
    fn tolerant_parse_keeps_good_rows_and_counts_damage() {
        let parsed = parse_plain_tolerant("192.0.2.1\nnot-an-ip\n192.0.2.2\n999.1.1.1\n");
        assert_eq!(parsed.addrs.len(), 2);
        assert_eq!(parsed.errors.len(), 2);
        assert_eq!(parsed.errors[0].line, 2);
        assert!(!parsed.is_clean());

        let obs = ar_obs::Obs::new();
        parsed.record_obs(&obs, "test-feed");
        let report = obs.report();
        assert_eq!(report.counters["blocklists.rows_lost"], 2);
        assert_eq!(report.event_counts["feed_snapshot_damaged"], 2);
        assert!(report.events[0].detail.contains("test-feed"));
    }

    #[test]
    fn tolerant_parse_matches_strict_on_clean_input() {
        let text = "# header\n192.0.2.1\n192.0.2.2\n";
        let parsed = parse_plain_tolerant(text);
        assert!(parsed.is_clean());
        assert_eq!(parsed.addrs, parse_plain(text).unwrap());
        // A clean parse records nothing.
        let obs = ar_obs::Obs::new();
        parsed.record_obs(&obs, "clean");
        assert_eq!(obs.report().total_events(), 0);
    }

    #[test]
    fn cidr_mixed_entries() {
        let entries = parse_cidr("10.0.0.0/8\n192.0.2.7\n198.51.100.0/24 # doc\n").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].size(), 1 << 24);
        assert!(entries[0].contains("10.255.1.2".parse().unwrap()));
        assert!(!entries[0].contains("11.0.0.1".parse().unwrap()));
        assert_eq!(entries[1], FeedEntry::Addr("192.0.2.7".parse().unwrap()));
        assert_eq!(entries[2].size(), 256);
    }

    #[test]
    fn cidr_rejects_bad_lengths() {
        assert!(parse_cidr("10.0.0.0/33").is_err());
        assert!(parse_cidr("10.0.0.0/x").is_err());
    }

    #[test]
    fn dshield_parse_and_render() {
        let text = "# DShield.org\n# start\tend\tnetmask\n192.0.2.0\t192.0.2.255\t24\n203.0.113.5\t203.0.113.5\t32\textra\n";
        let entries = parse_dshield(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].size(), 256);
        assert!(entries[1].contains("203.0.113.5".parse().unwrap()));
        let rendered = render_dshield("x", &entries);
        let back = parse_dshield(&rendered).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn dshield_rejects_inverted_ranges() {
        let err = parse_dshield("192.0.2.9\t192.0.2.1\t24\n").unwrap_err();
        assert!(err.message.contains("inverted"));
    }

    #[test]
    fn entry_expansion() {
        let e = FeedEntry::Cidr("192.0.2.0".parse().unwrap(), 30);
        let addrs: Vec<Ipv4Addr> = e.addrs().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], "192.0.2.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(addrs[3], "192.0.2.3".parse::<Ipv4Addr>().unwrap());
        let r = FeedEntry::Range("10.0.0.1".parse().unwrap(), "10.0.0.3".parse().unwrap());
        assert_eq!(r.addrs().count(), 3);
    }
}
