//! Listings and the collected dataset.
//!
//! A [`Listing`] is one continuous presence of one IP on one blocklist —
//! the unit the paper counts ("45.1K listings … an IP address can be
//! present in different blocklists, therefore the number of listings need
//! not be equal to the number of reused IP addresses", §5).

use crate::catalog::{BlocklistMeta, ListId};
use ar_index::IpSet;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// One continuous listing interval `[start, end)` of `ip` on `list`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Listing {
    pub list: ListId,
    pub ip: Ipv4Addr,
    pub start: SimTime,
    pub end: SimTime,
}

impl Listing {
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Days the listing spans, rounded up (a listing seen on one daily
    /// snapshot counts as one day).
    pub fn days(&self) -> u64 {
        self.duration().as_secs().div_ceil(86_400)
    }

    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// The full collected blocklist dataset over the measurement periods.
#[derive(Debug, Clone, Serialize)]
pub struct BlocklistDataset {
    pub catalog: Vec<BlocklistMeta>,
    pub periods: Vec<TimeWindow>,
    pub listings: Vec<Listing>,
    /// Memoized distinct-address index; built on first [`Self::all_ips`]
    /// call and shared by every join thereafter.
    #[serde(skip)]
    all_ips: OnceLock<IpSet>,
}

impl BlocklistDataset {
    pub fn new(
        catalog: Vec<BlocklistMeta>,
        periods: Vec<TimeWindow>,
        mut listings: Vec<Listing>,
    ) -> Self {
        listings.sort_by_key(|l| (l.list, l.ip, l.start));
        BlocklistDataset {
            catalog,
            periods,
            listings,
            all_ips: OnceLock::new(),
        }
    }

    pub fn meta(&self, list: ListId) -> &BlocklistMeta {
        &self.catalog[usize::from(list.0)]
    }

    /// Every distinct blocklisted address (paper: 2.2M over 83 days).
    ///
    /// Computed at most once per dataset; subsequent calls return the same
    /// sorted index, so the join layer never rebuilds it.
    pub fn all_ips(&self) -> &IpSet {
        self.all_ips
            .get_or_init(|| self.listings.iter().map(|l| l.ip).collect())
    }

    /// Distinct addresses ever listed by one list.
    pub fn ips_of_list(&self, list: ListId) -> IpSet {
        self.listings
            .iter()
            .filter(|l| l.list == list)
            .map(|l| l.ip)
            .collect()
    }

    /// All listings of a given IP across lists.
    pub fn listings_of_ip(&self, ip: Ipv4Addr) -> Vec<&Listing> {
        self.listings.iter().filter(|l| l.ip == ip).collect()
    }

    /// Set of lists that ever listed `ip`.
    pub fn lists_containing(&self, ip: Ipv4Addr) -> BTreeSet<ListId> {
        self.listings
            .iter()
            .filter(|l| l.ip == ip)
            .map(|l| l.list)
            .collect()
    }

    /// Members of `list` at instant `t`.
    pub fn members_at(&self, list: ListId, t: SimTime) -> BTreeSet<Ipv4Addr> {
        self.listings
            .iter()
            .filter(|l| l.list == list && l.active_at(t))
            .map(|l| l.ip)
            .collect()
    }

    /// Mean daily size of a list across the measurement periods (paper:
    /// "each blocklist, on average, has 30K IP addresses").
    pub fn mean_daily_size(&self, list: ListId) -> f64 {
        let mut days = 0u64;
        let mut total = 0u64;
        for period in &self.periods {
            for day in period.days_iter() {
                days += 1;
                total += self
                    .listings
                    .iter()
                    .filter(|l| l.list == list && l.active_at(day))
                    .count() as u64;
            }
        }
        if days == 0 {
            0.0
        } else {
            total as f64 / days as f64
        }
    }

    /// Per-IP total days listed (maximum over its listings, as the paper's
    /// Figure 7 reports "the duration in days that they were present in a
    /// blocklist").
    pub fn days_listed(&self, ip: Ipv4Addr) -> u64 {
        self.listings_of_ip(ip)
            .iter()
            .map(|l| l.days())
            .max()
            .unwrap_or(0)
    }

    /// Build a per-IP index (repeated scans are O(n); the analysis crate
    /// uses this for the joins).
    pub fn index_by_ip(&self) -> BTreeMap<Ipv4Addr, Vec<&Listing>> {
        let mut map: BTreeMap<Ipv4Addr, Vec<&Listing>> = BTreeMap::new();
        for l in &self.listings {
            map.entry(l.ip).or_default().push(l);
        }
        map
    }

    /// Listings per list (sorted map for deterministic reporting).
    pub fn listings_per_list(&self) -> BTreeMap<ListId, usize> {
        let mut map = BTreeMap::new();
        for l in &self.listings {
            *map.entry(l.list).or_insert(0) += 1;
        }
        map
    }

    pub fn total_listings(&self) -> usize {
        self.listings.len()
    }

    /// Publish dataset-level collection metrics under `blocklists.*`:
    /// feeds and collection days ingested, listings reconstructed, distinct
    /// listed addresses, and a listing-duration histogram.
    pub fn record_obs(&self, obs: &ar_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        let days: u64 = self
            .periods
            .iter()
            .map(|p| p.days_iter().count() as u64)
            .sum();
        obs.add("blocklists.feeds", self.catalog.len() as u64);
        obs.add("blocklists.collection_days", days);
        obs.add("blocklists.days_expected", days * self.catalog.len() as u64);
        obs.add("blocklists.listings", self.listings.len() as u64);
        obs.add("blocklists.listed_ips", self.all_ips().len() as u64);
        let h = obs.histogram("blocklists.listing_days");
        for l in &self.listings {
            h.observe(l.days());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build_catalog;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, o)
    }

    fn mk(list: u16, o: u8, start_day: u64, end_day: u64) -> Listing {
        Listing {
            list: ListId(list),
            ip: ip(o),
            start: SimTime(start_day * 86_400),
            end: SimTime(end_day * 86_400),
        }
    }

    fn dataset(listings: Vec<Listing>) -> BlocklistDataset {
        BlocklistDataset::new(
            build_catalog(),
            vec![TimeWindow::new(SimTime(0), SimTime(40 * 86_400))],
            listings,
        )
    }

    #[test]
    fn listing_days_round_up() {
        assert_eq!(mk(0, 1, 0, 1).days(), 1);
        let partial = Listing {
            list: ListId(0),
            ip: ip(1),
            start: SimTime(0),
            end: SimTime(3_600),
        };
        assert_eq!(partial.days(), 1);
        assert_eq!(mk(0, 1, 0, 9).days(), 9);
    }

    #[test]
    fn membership_and_indexes() {
        let d = dataset(vec![mk(0, 1, 0, 5), mk(0, 2, 2, 10), mk(3, 1, 1, 3)]);
        assert_eq!(d.all_ips().len(), 2);
        assert_eq!(d.ips_of_list(ListId(0)).len(), 2);
        assert_eq!(d.lists_containing(ip(1)).len(), 2);
        let members = d.members_at(ListId(0), SimTime(3 * 86_400));
        assert!(members.contains(&ip(1)) && members.contains(&ip(2)));
        assert_eq!(d.members_at(ListId(0), SimTime(7 * 86_400)).len(), 1);
        assert_eq!(d.days_listed(ip(1)), 5);
        assert_eq!(d.index_by_ip()[&ip(1)].len(), 2);
        assert_eq!(d.total_listings(), 3);
        assert_eq!(d.listings_per_list()[&ListId(0)], 2);
    }

    #[test]
    fn mean_daily_size_counts_active_days() {
        // One IP listed days 0..10 of a 40-day period: mean size 10/40.
        let d = dataset(vec![mk(0, 1, 0, 10)]);
        let mean = d.mean_daily_size(ListId(0));
        assert!((mean - 10.0 / 40.0).abs() < 1e-9, "{mean}");
    }
}
