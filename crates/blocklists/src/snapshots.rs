//! Daily snapshots ↔ listings.
//!
//! The paper's pipeline did not observe listing intervals directly: it
//! pulled each feed once a day for 83 days and *reconstructed* presence
//! intervals from consecutive snapshots. This module provides both
//! directions —
//!
//! * [`daily_snapshots`]: what a collector would have downloaded each day,
//! * [`listings_from_snapshots`]: the reconstruction (an address present
//!   on consecutive days is one listing; a gap ends it),
//!
//! so the analysis can run on snapshot data exactly as the real study did,
//! and tests can verify the reconstruction loses nothing but sub-day
//! timing.

use crate::catalog::ListId;
use crate::dataset::{BlocklistDataset, Listing};
use ar_faults::{coin, FaultPlan, FeedFaultKind};
use ar_simnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One day's pull of one feed.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub list: ListId,
    /// Midnight timestamp of the pull.
    pub day: SimTime,
    pub members: BTreeSet<Ipv4Addr>,
}

/// Materialise the daily snapshots a collector would have taken for
/// `list` across the dataset's measurement periods.
pub fn daily_snapshots(dataset: &BlocklistDataset, list: ListId) -> Vec<Snapshot> {
    let mut out = Vec::new();
    for period in &dataset.periods {
        for day in period.days_iter() {
            out.push(Snapshot {
                list,
                day,
                members: dataset.members_at(list, day).into_iter().collect(),
            });
        }
    }
    out
}

/// Reconstruct listings from a day-ordered snapshot sequence (one list).
///
/// Resolution is one day: a listing's start is the first day it appears,
/// its end the day after it was last seen. Gaps of one or more days split
/// listings, exactly as the paper's differencing would.
pub fn listings_from_snapshots(snapshots: &[Snapshot]) -> Vec<Listing> {
    let mut open: BTreeMap<Ipv4Addr, (SimTime, SimTime)> = BTreeMap::new();
    let mut out = Vec::new();
    let day = SimDuration::from_days(1);

    for snap in snapshots {
        // Close listings for addresses that disappeared (or whose snapshot
        // stream jumped periods: a gap > 1 day also closes).
        let mut closed: Vec<Ipv4Addr> = Vec::new();
        for (ip, (start, last)) in &open {
            let contiguous = snap.day - *last <= day;
            if !snap.members.contains(ip) || !contiguous {
                out.push(Listing {
                    list: snap.list,
                    ip: *ip,
                    start: *start,
                    end: *last + day,
                });
                closed.push(*ip);
            }
        }
        for ip in &closed {
            open.remove(ip);
        }
        for ip in &snap.members {
            open.entry(*ip)
                .and_modify(|(_, last)| *last = snap.day)
                .or_insert((snap.day, snap.day));
        }
    }
    if let Some(last_snap) = snapshots.last() {
        for (ip, (start, last)) in open {
            out.push(Listing {
                list: last_snap.list,
                ip,
                start,
                end: last + day,
            });
        }
    }
    out.sort_by_key(|l| (l.ip, l.start));
    out
}

/// Rebuild a whole dataset through the snapshot channel — what the real
/// collection pipeline produces from raw daily pulls.
pub fn dataset_via_snapshots(dataset: &BlocklistDataset) -> BlocklistDataset {
    let mut listings = Vec::new();
    for meta in &dataset.catalog {
        let snaps = daily_snapshots(dataset, meta.id);
        if !snaps.is_empty() {
            listings.extend(listings_from_snapshots(&snaps));
        }
    }
    BlocklistDataset::new(dataset.catalog.clone(), dataset.periods.clone(), listings)
}

/// What a fault plan did to one feed's snapshot stream.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FeedDamage {
    /// Collection days whose snapshot never materialised.
    pub missed_days: usize,
    /// Snapshots cut short (leading fraction kept).
    pub truncated: usize,
    /// Snapshots with line-level corruption.
    pub corrupt: usize,
    /// Member rows lost to truncation + corruption.
    pub rows_lost: u64,
}

impl std::ops::AddAssign for FeedDamage {
    fn add_assign(&mut self, o: FeedDamage) {
        self.missed_days += o.missed_days;
        self.truncated += o.truncated;
        self.corrupt += o.corrupt;
        self.rows_lost += o.rows_lost;
    }
}

/// Damage a feed's daily snapshots according to `plan`: missed collection
/// days vanish entirely, truncated files keep only their leading entries,
/// and corrupt files lose individual lines (decided by the plan's
/// stateless coin, so damage is identical across runs and thread counts).
pub fn apply_feed_faults(
    snapshots: Vec<Snapshot>,
    plan: &FaultPlan,
) -> (Vec<Snapshot>, FeedDamage) {
    let mut damage = FeedDamage::default();
    let mut out = Vec::with_capacity(snapshots.len());
    for mut snap in snapshots {
        match plan.feed_fault(snap.list.0, snap.day) {
            None => out.push(snap),
            Some(FeedFaultKind::MissedDay) => damage.missed_days += 1,
            Some(FeedFaultKind::Truncated { keep }) => {
                let total = snap.members.len();
                let kept = (keep * total as f64).round() as usize;
                snap.members = snap.members.into_iter().take(kept).collect();
                damage.truncated += 1;
                damage.rows_lost += (total - snap.members.len()) as u64;
                out.push(snap);
            }
            Some(FeedFaultKind::CorruptLines { drop }) => {
                let total = snap.members.len();
                let (list, day) = (u64::from(snap.list.0), snap.day.day_index());
                snap.members.retain(|ip| {
                    !coin::flip(drop, &[plan.seed.0, list, day, u64::from(u32::from(*ip))])
                });
                damage.corrupt += 1;
                damage.rows_lost += (total - snap.members.len()) as u64;
                out.push(snap);
            }
        }
    }
    (out, damage)
}

/// One reconstructed listing plus its confidence flag.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RecoveredListing {
    pub listing: Listing,
    /// True when the listing bridged ≥ 1 missing collection day — the
    /// address was assumed present on a day nobody looked.
    pub interpolated: bool,
}

/// Gap-tolerant reconstruction output.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveredListings {
    pub entries: Vec<RecoveredListing>,
    /// Expected collection days with no snapshot in the input.
    pub missing_days: usize,
    /// Total (listing × missing-day) bridges performed.
    pub bridged_days: u64,
}

impl RecoveredListings {
    pub fn listings(&self) -> Vec<Listing> {
        self.entries.iter().map(|e| e.listing).collect()
    }

    pub fn interpolated_count(&self) -> usize {
        self.entries.iter().filter(|e| e.interpolated).count()
    }
}

/// Reconstruct listings from a snapshot stream that may be missing
/// collection days.
///
/// `expected_days` is the full collection grid (every day a snapshot
/// *should* exist for); days in the grid with no snapshot are treated as
/// "nobody looked" rather than "the address was delisted". An address
/// present on both sides of a run of ≤ `max_bridge` consecutive missing
/// days is interpolated across the run as one continuous listing, flagged
/// low-confidence. Absence on a day that *was* collected still closes the
/// listing, and gaps outside the grid (the jump between measurement
/// periods) still split, so with no missing days this is exactly
/// [`listings_from_snapshots`].
pub fn listings_from_snapshots_tolerant(
    snapshots: &[Snapshot],
    expected_days: impl IntoIterator<Item = SimTime>,
    max_bridge: u64,
) -> RecoveredListings {
    let expected: BTreeSet<u64> = expected_days.into_iter().map(|d| d.day_index()).collect();
    let present: BTreeSet<u64> = snapshots.iter().map(|s| s.day.day_index()).collect();
    let missing: BTreeSet<u64> = expected.difference(&present).copied().collect();

    let day = SimDuration::from_days(1);
    // ip → (start, last observed day, bridged any missing day)
    let mut open: BTreeMap<Ipv4Addr, (SimTime, SimTime, bool)> = BTreeMap::new();
    let mut out = RecoveredListings {
        missing_days: missing.len(),
        ..RecoveredListings::default()
    };

    let close = |list: ListId,
                 ip: Ipv4Addr,
                 (start, last, bridged): (SimTime, SimTime, bool),
                 out: &mut RecoveredListings| {
        out.entries.push(RecoveredListing {
            listing: Listing {
                list,
                ip,
                start,
                end: last + day,
            },
            interpolated: bridged,
        });
    };

    for snap in snapshots {
        let mut closed: Vec<Ipv4Addr> = Vec::new();
        let mut bridges: Vec<(Ipv4Addr, u64)> = Vec::new();
        for (ip, state) in &open {
            let gap = snap.day.day_index() - state.1.day_index();
            let bridgeable = gap >= 1
                && gap <= max_bridge + 1
                && (state.1.day_index() + 1..snap.day.day_index()).all(|d| missing.contains(&d));
            if snap.members.contains(ip) && bridgeable {
                if gap > 1 {
                    bridges.push((*ip, gap - 1));
                }
            } else {
                closed.push(*ip);
            }
        }
        for ip in closed {
            if let Some(state) = open.remove(&ip) {
                close(snap.list, ip, state, &mut out);
            }
        }
        for (ip, bridged_days) in bridges {
            if let Some(state) = open.get_mut(&ip) {
                state.2 = true;
                out.bridged_days += bridged_days;
            }
        }
        for ip in &snap.members {
            open.entry(*ip)
                .and_modify(|(_, last, _)| *last = snap.day)
                .or_insert((snap.day, snap.day, false));
        }
    }
    if let Some(last_snap) = snapshots.last() {
        for (ip, state) in std::mem::take(&mut open) {
            close(last_snap.list, ip, state, &mut out);
        }
    }
    out.entries.sort_by_key(|e| (e.listing.ip, e.listing.start));
    out
}

/// Aggregate degradation across a whole dataset's faulted collection run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FeedDegradation {
    pub damage: FeedDamage,
    /// Listings that bridged at least one missing collection day.
    pub interpolated_listings: usize,
    pub bridged_days: u64,
}

impl FeedDegradation {
    pub fn is_clean(&self) -> bool {
        self.damage.missed_days == 0 && self.damage.truncated == 0 && self.damage.corrupt == 0
    }

    pub fn describe(&self) -> String {
        format!(
            "feed faults: {} missed days, {} truncated, {} corrupt snapshots ({} rows lost); {} listings interpolated across {} missing days",
            self.damage.missed_days,
            self.damage.truncated,
            self.damage.corrupt,
            self.damage.rows_lost,
            self.interpolated_listings,
            self.bridged_days,
        )
    }

    /// Publish what the faulted collection run lost and recovered:
    /// `blocklists.*` counters plus one aggregated event per damage class
    /// (missed days, damaged snapshots, bridged days).
    pub fn record_obs(&self, obs: &ar_obs::Obs) {
        use ar_obs::EventKind;
        if !obs.enabled() {
            return;
        }
        obs.add("blocklists.days_missed", self.damage.missed_days as u64);
        obs.add(
            "blocklists.snapshots_damaged",
            (self.damage.truncated + self.damage.corrupt) as u64,
        );
        obs.add("blocklists.rows_lost", self.damage.rows_lost);
        obs.add("blocklists.days_bridged", self.bridged_days);
        obs.add(
            "blocklists.listings_interpolated",
            self.interpolated_listings as u64,
        );
        if self.damage.missed_days > 0 {
            obs.event(
                "blocklists",
                EventKind::FeedDayMissed,
                None,
                self.damage.missed_days as u64,
                "daily snapshot pulls never materialised",
            );
        }
        let damaged = self.damage.truncated + self.damage.corrupt;
        if damaged > 0 {
            obs.event(
                "blocklists",
                EventKind::FeedSnapshotDamaged,
                None,
                damaged as u64,
                format!(
                    "{} truncated, {} corrupt ({} rows lost)",
                    self.damage.truncated, self.damage.corrupt, self.damage.rows_lost
                ),
            );
        }
        if self.bridged_days > 0 {
            obs.event(
                "blocklists",
                EventKind::FeedDayBridged,
                None,
                self.bridged_days,
                format!(
                    "{} listings interpolated across missed collection days",
                    self.interpolated_listings
                ),
            );
        }
    }
}

/// Rebuild a dataset through a *faulted* collection run: damage each
/// feed's daily pulls per `plan`, then reconstruct gap-tolerantly,
/// interpolating across up to `max_bridge` consecutive missed days.
pub fn dataset_via_faulted_snapshots(
    dataset: &BlocklistDataset,
    plan: &FaultPlan,
    max_bridge: u64,
) -> (BlocklistDataset, FeedDegradation) {
    let mut listings = Vec::new();
    let mut degradation = FeedDegradation::default();
    let expected: Vec<SimTime> = dataset.periods.iter().flat_map(|p| p.days_iter()).collect();
    for meta in &dataset.catalog {
        let snaps = daily_snapshots(dataset, meta.id);
        if snaps.is_empty() {
            continue;
        }
        let (snaps, damage) = apply_feed_faults(snaps, plan);
        degradation.damage += damage;
        if snaps.is_empty() {
            continue;
        }
        let recovered =
            listings_from_snapshots_tolerant(&snaps, expected.iter().copied(), max_bridge);
        degradation.interpolated_listings += recovered.interpolated_count();
        degradation.bridged_days += recovered.bridged_days;
        listings.extend(recovered.listings());
    }
    (
        BlocklistDataset::new(dataset.catalog.clone(), dataset.periods.clone(), listings),
        degradation,
    )
}

/// Collector-side coverage summary (for §4-style reporting).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SnapshotStats {
    pub snapshots: usize,
    pub total_member_rows: u64,
    pub max_daily_size: usize,
}

pub fn snapshot_stats(snapshots: &[Snapshot]) -> SnapshotStats {
    SnapshotStats {
        snapshots: snapshots.len(),
        total_member_rows: snapshots.iter().map(|s| s.members.len() as u64).sum(),
        max_daily_size: snapshots.iter().map(|s| s.members.len()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build_catalog;
    use ar_simnet::time::{date, TimeWindow};

    const DAY: u64 = 86_400;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, o)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(date(2019, 8, 3), date(2019, 8, 13))
    }

    fn dataset(listings: Vec<Listing>) -> BlocklistDataset {
        BlocklistDataset::new(build_catalog(), vec![window()], listings)
    }

    fn listing(o: u8, start_day: u64, end_day: u64) -> Listing {
        Listing {
            list: ListId(0),
            ip: ip(o),
            start: window().start + SimDuration::from_secs(start_day * DAY),
            end: window().start + SimDuration::from_secs(end_day * DAY),
        }
    }

    #[test]
    fn snapshots_reflect_membership() {
        let d = dataset(vec![listing(1, 0, 3), listing(2, 2, 5)]);
        let snaps = daily_snapshots(&d, ListId(0));
        assert_eq!(snaps.len(), 10);
        assert!(snaps[0].members.contains(&ip(1)));
        assert!(!snaps[0].members.contains(&ip(2)));
        assert!(snaps[2].members.contains(&ip(2)));
        assert!(snaps[4].members.contains(&ip(2)));
        assert!(snaps[5].members.is_empty());
    }

    #[test]
    fn reconstruction_roundtrips_to_day_resolution() {
        let original = vec![listing(1, 0, 3), listing(2, 2, 5), listing(1, 7, 9)];
        let d = dataset(original.clone());
        let snaps = daily_snapshots(&d, ListId(0));
        let rebuilt = listings_from_snapshots(&snaps);
        assert_eq!(rebuilt.len(), original.len());
        for (r, o) in rebuilt.iter().zip({
            let mut s = original.clone();
            s.sort_by_key(|l| (l.ip, l.start));
            s
        }) {
            assert_eq!(r.ip, o.ip);
            // Day resolution: starts truncate to the observing snapshot.
            assert_eq!(r.start.floor_day(), o.start.floor_day());
            assert_eq!(r.days(), o.days());
        }
    }

    #[test]
    fn gaps_split_listings() {
        // One interval with a one-day hole becomes two listings.
        let d = dataset(vec![listing(7, 0, 2), listing(7, 3, 6)]);
        let snaps = daily_snapshots(&d, ListId(0));
        let rebuilt = listings_from_snapshots(&snaps);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt[0].days(), 2);
        assert_eq!(rebuilt[1].days(), 3);
    }

    #[test]
    fn whole_dataset_roundtrip_preserves_analysis_metrics() {
        // Generated datasets analysed via snapshots must yield identical
        // day-resolution metrics.
        use ar_simnet::alloc::{AllocationPlan, InterestSet};
        use ar_simnet::config::UniverseConfig;
        use ar_simnet::rng::Seed;
        use ar_simnet::universe::Universe;

        let u = Universe::generate(Seed(404), &UniverseConfig::tiny());
        let alloc = AllocationPlan::build(&u, window(), InterestSet::Observable);
        let direct = crate::generate::generate_dataset(&u, &[(window(), &alloc)], build_catalog());
        let via = dataset_via_snapshots(&direct);

        // Daily pulls cannot see listings that start and end between two
        // midnights — a real undercount of the paper's methodology. The
        // snapshot view must be a subset, and everything missing must be
        // exactly such an invisible sub-day listing.
        let direct_ips = direct.all_ips();
        let via_ips = via.all_ips();
        assert!(via_ips.is_subset(direct_ips));
        for ip in direct_ips.difference(via_ips) {
            for l in direct.listings_of_ip(ip) {
                assert_eq!(
                    l.start.floor_day(),
                    // end is exclusive: an interval inside one day has
                    // end ≤ next midnight.
                    (l.end - ar_simnet::time::SimDuration(1)).floor_day(),
                    "{ip} invisible to snapshots but spans a midnight"
                );
            }
        }
        for ip in via_ips {
            let a = direct.days_listed(ip);
            let b = via.days_listed(ip);
            // Day-resolution reconstruction can shift by at most one day in
            // each direction.
            assert!(
                (a as i64 - b as i64).abs() <= 1,
                "{ip}: direct {a}d vs snapshot {b}d"
            );
        }
    }

    #[test]
    fn tolerant_reconstruction_equals_strict_when_nothing_missing() {
        let original = vec![listing(1, 0, 3), listing(2, 2, 5), listing(1, 7, 9)];
        let d = dataset(original);
        let snaps = daily_snapshots(&d, ListId(0));
        let strict = listings_from_snapshots(&snaps);
        let tolerant = listings_from_snapshots_tolerant(&snaps, window().days_iter(), 3);
        assert_eq!(tolerant.missing_days, 0);
        assert_eq!(tolerant.bridged_days, 0);
        assert_eq!(tolerant.interpolated_count(), 0);
        assert_eq!(tolerant.listings(), strict);
    }

    #[test]
    fn tolerant_reconstruction_bridges_missing_days() {
        // Address listed days 0..6; the day-2 and day-3 snapshots are lost.
        let d = dataset(vec![listing(1, 0, 6)]);
        let snaps: Vec<Snapshot> = daily_snapshots(&d, ListId(0))
            .into_iter()
            .filter(|s| {
                let day = (s.day.as_secs() - window().start.as_secs()) / DAY;
                day != 2 && day != 3
            })
            .collect();
        // Strict reconstruction splits the listing at the hole…
        assert_eq!(listings_from_snapshots(&snaps).len(), 2);
        // …the tolerant one bridges it and flags the interpolation.
        let tolerant = listings_from_snapshots_tolerant(&snaps, window().days_iter(), 3);
        assert_eq!(tolerant.missing_days, 2);
        assert_eq!(tolerant.entries.len(), 1);
        assert!(tolerant.entries[0].interpolated);
        assert_eq!(tolerant.bridged_days, 2);
        assert_eq!(tolerant.entries[0].listing.days(), 6);
    }

    #[test]
    fn tolerant_reconstruction_respects_max_bridge() {
        // A 3-day hole with max_bridge 2 must still split.
        let d = dataset(vec![listing(1, 0, 8)]);
        let snaps: Vec<Snapshot> = daily_snapshots(&d, ListId(0))
            .into_iter()
            .filter(|s| {
                let day = (s.day.as_secs() - window().start.as_secs()) / DAY;
                !(2..=4).contains(&day)
            })
            .collect();
        let tolerant = listings_from_snapshots_tolerant(&snaps, window().days_iter(), 2);
        assert_eq!(tolerant.entries.len(), 2);
        assert!(tolerant.entries.iter().all(|e| !e.interpolated));
    }

    #[test]
    fn absence_on_a_collected_day_still_closes() {
        // The address genuinely leaves on day 3 while other days are
        // missing elsewhere: a collected day showing absence is a real
        // delisting, never interpolated over.
        let d = dataset(vec![listing(1, 0, 3), listing(1, 5, 8)]);
        let snaps = daily_snapshots(&d, ListId(0));
        let tolerant = listings_from_snapshots_tolerant(&snaps, window().days_iter(), 5);
        assert_eq!(tolerant.entries.len(), 2);
        assert!(tolerant.entries.iter().all(|e| !e.interpolated));
    }

    #[test]
    fn feed_faults_damage_snapshots_deterministically() {
        use ar_faults::{FaultPlan, FeedFault, FeedFaultKind};
        use ar_simnet::rng::Seed;

        let d = dataset(vec![
            listing(1, 0, 10),
            listing(2, 0, 10),
            listing(3, 0, 10),
        ]);
        let snaps = daily_snapshots(&d, ListId(0));
        let mut plan = FaultPlan::zero(Seed(88));
        let day0 = window().start;
        let day = |i: u64| day0 + SimDuration::from_days(i);
        plan.feed_faults.push(FeedFault {
            list: 0,
            day: day(1),
            kind: FeedFaultKind::MissedDay,
        });
        plan.feed_faults.push(FeedFault {
            list: 0,
            day: day(2),
            kind: FeedFaultKind::Truncated { keep: 0.34 },
        });
        plan.feed_faults.push(FeedFault {
            list: 0,
            day: day(3),
            kind: FeedFaultKind::CorruptLines { drop: 0.99 },
        });
        plan.rebuild_indexes();

        let (a, damage) = apply_feed_faults(snaps.clone(), &plan);
        let (b, _) = apply_feed_faults(snaps.clone(), &plan);
        assert_eq!(a.len(), snaps.len() - 1, "missed day dropped");
        assert_eq!(damage.missed_days, 1);
        assert_eq!(damage.truncated, 1);
        assert_eq!(damage.corrupt, 1);
        assert!(
            damage.rows_lost >= 2,
            "truncation + heavy corruption lose rows"
        );
        // Truncation keeps the leading third of a 3-member file.
        let truncated = a.iter().find(|s| s.day == day(2)).unwrap();
        assert_eq!(truncated.members.len(), 1);
        // Determinism: same plan, same damage.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.day, y.day);
            assert_eq!(x.members, y.members);
        }
        // Zero plan: untouched.
        let (c, clean) = apply_feed_faults(snaps.clone(), &FaultPlan::zero(Seed(1)));
        assert_eq!(c.len(), snaps.len());
        assert_eq!(clean.rows_lost, 0);
    }

    #[test]
    fn faulted_dataset_stays_subset_of_direct_universe() {
        use ar_faults::{FaultConfig, FaultDomain, FaultPlan};
        use ar_simnet::alloc::{AllocationPlan, InterestSet};
        use ar_simnet::config::UniverseConfig;
        use ar_simnet::rng::Seed;
        use ar_simnet::universe::Universe;

        let u = Universe::generate(Seed(505), &UniverseConfig::tiny());
        let alloc = AllocationPlan::build(&u, window(), InterestSet::Observable);
        let direct = crate::generate::generate_dataset(&u, &[(window(), &alloc)], build_catalog());
        let plan = FaultPlan::generate(
            Seed(505),
            &FaultConfig::at_intensity(1.0),
            &FaultDomain {
                asns: Vec::new(),
                periods: vec![window()],
                atlas_window: window(),
                feed_count: direct.catalog.len() as u16,
            },
        );
        let (faulted, degradation) = dataset_via_faulted_snapshots(&direct, &plan, 3);
        assert!(!degradation.is_clean(), "intensity 1.0 must damage feeds");
        // A damaged collection can only lose addresses, never invent them.
        assert!(faulted
            .all_ips()
            .is_subset(dataset_via_snapshots(&direct).all_ips()));
        // And the zero plan reproduces the snapshot channel exactly.
        let (clean, d0) = dataset_via_faulted_snapshots(&direct, &FaultPlan::zero(Seed(1)), 3);
        assert!(d0.is_clean());
        assert_eq!(clean.listings, dataset_via_snapshots(&direct).listings);
    }

    #[test]
    fn stats_summarise() {
        let d = dataset(vec![listing(1, 0, 10), listing(2, 0, 10)]);
        let snaps = daily_snapshots(&d, ListId(0));
        let stats = snapshot_stats(&snaps);
        assert_eq!(stats.snapshots, 10);
        assert_eq!(stats.max_daily_size, 2);
        assert_eq!(stats.total_member_rows, 20);
    }
}
