//! Daily snapshots ↔ listings.
//!
//! The paper's pipeline did not observe listing intervals directly: it
//! pulled each feed once a day for 83 days and *reconstructed* presence
//! intervals from consecutive snapshots. This module provides both
//! directions —
//!
//! * [`daily_snapshots`]: what a collector would have downloaded each day,
//! * [`listings_from_snapshots`]: the reconstruction (an address present
//!   on consecutive days is one listing; a gap ends it),
//!
//! so the analysis can run on snapshot data exactly as the real study did,
//! and tests can verify the reconstruction loses nothing but sub-day
//! timing.

use crate::catalog::ListId;
use crate::dataset::{BlocklistDataset, Listing};
use ar_simnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One day's pull of one feed.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    pub list: ListId,
    /// Midnight timestamp of the pull.
    pub day: SimTime,
    pub members: BTreeSet<Ipv4Addr>,
}

/// Materialise the daily snapshots a collector would have taken for
/// `list` across the dataset's measurement periods.
pub fn daily_snapshots(dataset: &BlocklistDataset, list: ListId) -> Vec<Snapshot> {
    let mut out = Vec::new();
    for period in &dataset.periods {
        for day in period.days_iter() {
            out.push(Snapshot {
                list,
                day,
                members: dataset.members_at(list, day).into_iter().collect(),
            });
        }
    }
    out
}

/// Reconstruct listings from a day-ordered snapshot sequence (one list).
///
/// Resolution is one day: a listing's start is the first day it appears,
/// its end the day after it was last seen. Gaps of one or more days split
/// listings, exactly as the paper's differencing would.
pub fn listings_from_snapshots(snapshots: &[Snapshot]) -> Vec<Listing> {
    let mut open: BTreeMap<Ipv4Addr, (SimTime, SimTime)> = BTreeMap::new();
    let mut out = Vec::new();
    let day = SimDuration::from_days(1);

    for snap in snapshots {
        // Close listings for addresses that disappeared (or whose snapshot
        // stream jumped periods: a gap > 1 day also closes).
        let mut closed: Vec<Ipv4Addr> = Vec::new();
        for (ip, (start, last)) in &open {
            let contiguous = snap.day - *last <= day;
            if !snap.members.contains(ip) || !contiguous {
                out.push(Listing {
                    list: snap.list,
                    ip: *ip,
                    start: *start,
                    end: *last + day,
                });
                closed.push(*ip);
            }
        }
        for ip in &closed {
            open.remove(ip);
        }
        for ip in &snap.members {
            open.entry(*ip)
                .and_modify(|(_, last)| *last = snap.day)
                .or_insert((snap.day, snap.day));
        }
    }
    for (ip, (start, last)) in open {
        out.push(Listing {
            list: snapshots.last().expect("nonempty").list,
            ip,
            start,
            end: last + day,
        });
    }
    out.sort_by_key(|l| (l.ip, l.start));
    out
}

/// Rebuild a whole dataset through the snapshot channel — what the real
/// collection pipeline produces from raw daily pulls.
pub fn dataset_via_snapshots(dataset: &BlocklistDataset) -> BlocklistDataset {
    let mut listings = Vec::new();
    for meta in &dataset.catalog {
        let snaps = daily_snapshots(dataset, meta.id);
        if !snaps.is_empty() {
            listings.extend(listings_from_snapshots(&snaps));
        }
    }
    BlocklistDataset::new(dataset.catalog.clone(), dataset.periods.clone(), listings)
}

/// Collector-side coverage summary (for §4-style reporting).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SnapshotStats {
    pub snapshots: usize,
    pub total_member_rows: u64,
    pub max_daily_size: usize,
}

pub fn snapshot_stats(snapshots: &[Snapshot]) -> SnapshotStats {
    SnapshotStats {
        snapshots: snapshots.len(),
        total_member_rows: snapshots.iter().map(|s| s.members.len() as u64).sum(),
        max_daily_size: snapshots.iter().map(|s| s.members.len()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build_catalog;
    use ar_simnet::time::{date, TimeWindow};

    const DAY: u64 = 86_400;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, o)
    }

    fn window() -> TimeWindow {
        TimeWindow::new(date(2019, 8, 3), date(2019, 8, 13))
    }

    fn dataset(listings: Vec<Listing>) -> BlocklistDataset {
        BlocklistDataset::new(build_catalog(), vec![window()], listings)
    }

    fn listing(o: u8, start_day: u64, end_day: u64) -> Listing {
        Listing {
            list: ListId(0),
            ip: ip(o),
            start: window().start + SimDuration::from_secs(start_day * DAY),
            end: window().start + SimDuration::from_secs(end_day * DAY),
        }
    }

    #[test]
    fn snapshots_reflect_membership() {
        let d = dataset(vec![listing(1, 0, 3), listing(2, 2, 5)]);
        let snaps = daily_snapshots(&d, ListId(0));
        assert_eq!(snaps.len(), 10);
        assert!(snaps[0].members.contains(&ip(1)));
        assert!(!snaps[0].members.contains(&ip(2)));
        assert!(snaps[2].members.contains(&ip(2)));
        assert!(snaps[4].members.contains(&ip(2)));
        assert!(snaps[5].members.is_empty());
    }

    #[test]
    fn reconstruction_roundtrips_to_day_resolution() {
        let original = vec![listing(1, 0, 3), listing(2, 2, 5), listing(1, 7, 9)];
        let d = dataset(original.clone());
        let snaps = daily_snapshots(&d, ListId(0));
        let rebuilt = listings_from_snapshots(&snaps);
        assert_eq!(rebuilt.len(), original.len());
        for (r, o) in rebuilt.iter().zip({
            let mut s = original.clone();
            s.sort_by_key(|l| (l.ip, l.start));
            s
        }) {
            assert_eq!(r.ip, o.ip);
            // Day resolution: starts truncate to the observing snapshot.
            assert_eq!(r.start.floor_day(), o.start.floor_day());
            assert_eq!(r.days(), o.days());
        }
    }

    #[test]
    fn gaps_split_listings() {
        // One interval with a one-day hole becomes two listings.
        let d = dataset(vec![listing(7, 0, 2), listing(7, 3, 6)]);
        let snaps = daily_snapshots(&d, ListId(0));
        let rebuilt = listings_from_snapshots(&snaps);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt[0].days(), 2);
        assert_eq!(rebuilt[1].days(), 3);
    }

    #[test]
    fn whole_dataset_roundtrip_preserves_analysis_metrics() {
        // Generated datasets analysed via snapshots must yield identical
        // day-resolution metrics.
        use ar_simnet::alloc::{AllocationPlan, InterestSet};
        use ar_simnet::config::UniverseConfig;
        use ar_simnet::rng::Seed;
        use ar_simnet::universe::Universe;

        let u = Universe::generate(Seed(404), &UniverseConfig::tiny());
        let alloc = AllocationPlan::build(&u, window(), InterestSet::Observable);
        let direct = crate::generate::generate_dataset(&u, &[(window(), &alloc)], build_catalog());
        let via = dataset_via_snapshots(&direct);

        // Daily pulls cannot see listings that start and end between two
        // midnights — a real undercount of the paper's methodology. The
        // snapshot view must be a subset, and everything missing must be
        // exactly such an invisible sub-day listing.
        let direct_ips = direct.all_ips();
        let via_ips = via.all_ips();
        assert!(via_ips.is_subset(direct_ips));
        for ip in direct_ips.difference(via_ips) {
            for l in direct.listings_of_ip(ip) {
                assert_eq!(
                    l.start.floor_day(),
                    // end is exclusive: an interval inside one day has
                    // end ≤ next midnight.
                    (l.end - ar_simnet::time::SimDuration(1)).floor_day(),
                    "{ip} invisible to snapshots but spans a midnight"
                );
            }
        }
        for ip in via_ips {
            let a = direct.days_listed(ip);
            let b = via.days_listed(ip);
            // Day-resolution reconstruction can shift by at most one day in
            // each direction.
            assert!(
                (a as i64 - b as i64).abs() <= 1,
                "{ip}: direct {a}d vs snapshot {b}d"
            );
        }
    }

    #[test]
    fn stats_summarise() {
        let d = dataset(vec![listing(1, 0, 10), listing(2, 0, 10)]);
        let snaps = daily_snapshots(&d, ListId(0));
        let stats = snapshot_stats(&snaps);
        assert_eq!(stats.snapshots, 10);
        assert_eq!(stats.max_daily_size, 2);
        assert_eq!(stats.total_member_rows, 20);
    }
}
