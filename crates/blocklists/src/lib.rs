//! # ar-blocklists — the blocklist ecosystem (paper §4, Table 2)
//!
//! Models the 151 public IPv4 blocklists of the BLAG dataset the paper
//! monitors over two periods (03 Aug–10 Sep 2019 and 29 Mar–11 May 2020):
//!
//! * [`catalog`] — the Table 2 maintainer/list inventory with per-list
//!   categories, catch rates and retention behaviour;
//! * [`generate`] — feed simulation: malicious events (attributed to
//!   public addresses, not hosts — the root of unjust blocking) flow into
//!   per-list listing lifecycles;
//! * [`dataset`] — the collected listings with membership, duration and
//!   per-list queries;
//! * [`parsers`] — real on-disk feed formats (plain, CIDR, DShield) so the
//!   same pipeline can ingest genuine snapshots;
//! * [`snapshots`] — the daily-pull collection channel and its listing
//!   reconstruction.
//!
//! ```
//! use ar_blocklists::{build_catalog, parse_plain};
//!
//! let catalog = build_catalog();
//! assert_eq!(catalog.len(), 151); // Table 2's 151 monitored lists
//!
//! let feed = "# nixspam snapshot\n192.0.2.7\n198.51.100.9\n";
//! assert_eq!(parse_plain(feed).unwrap().len(), 2);
//! ```

pub mod catalog;
pub mod dataset;
pub mod generate;
pub mod parsers;
pub mod policy;
pub mod snapshots;

pub use catalog::{build_catalog, BlocklistMeta, ListId, MAINTAINERS, TOTAL_LISTS};
pub use dataset::{BlocklistDataset, Listing};
pub use generate::{generate_dataset, generate_dataset_threaded, malice_events};
pub use parsers::{
    parse_cidr, parse_dshield, parse_plain, parse_plain_tolerant, render_dshield, render_plain,
    FeedEntry, FeedParse,
};
pub use policy::{
    action_for, parse_reused_list, render_reused_list, split_feed, Action, GreylistPolicy,
    ReuseEvidence, ReusedAddressEntry, SplitFeed,
};
pub use snapshots::{
    apply_feed_faults, daily_snapshots, dataset_via_faulted_snapshots, dataset_via_snapshots,
    listings_from_snapshots, listings_from_snapshots_tolerant, snapshot_stats, FeedDamage,
    FeedDegradation, RecoveredListing, RecoveredListings, Snapshot, SnapshotStats,
};
