//! The 151-blocklist catalogue (paper Table 2, from the BLAG dataset).
//!
//! Each maintainer contributes a known number of lists; 27 lists (the
//! starred maintainers) were independently named by surveyed operators.
//! Every list gets a category (what kind of abuse it tracks) and a
//! *prominence*-driven catch rate that determines how much of the malicious
//! event stream it observes — the mechanism behind the paper's finding that
//! the top-10 lists hold 53–70% of all listings, led by spam/reputation
//! lists (Stopforumspam, Nixspam, Alienvault, Bad IPs).

use ar_simnet::malice::MaliceCategory;
use serde::{Deserialize, Serialize};

/// Dense blocklist identifier; index into the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ListId(pub u16);

/// Static description of one blocklist feed.
#[derive(Debug, Clone, Serialize)]
pub struct BlocklistMeta {
    pub id: ListId,
    pub maintainer: &'static str,
    /// Feed name, unique within the catalogue.
    pub name: String,
    pub category: MaliceCategory,
    /// Marked (*) in Table 2: named by survey respondents.
    pub survey_used: bool,
    /// Fraction of matching malicious events this list observes.
    pub catch_rate: f64,
    /// Median days a listing is retained after the last observed activity.
    pub grace_days: f64,
}

/// Table 2: maintainer → number of lists (sums to 151). Starred
/// maintainers are those whose lists survey respondents reported using.
/// DShield and Spamhaus are named as monitored lists in §4 ("popular lists
/// like DShield, NixSpam, Spamhaus, Alienvault and Abuse.ch") and complete
/// the 151 total.
pub const MAINTAINERS: [(&str, u16, bool); 43] = [
    ("DShield", 1, false),
    ("Spamhaus", 1, false),
    ("Bad IPs", 44, false),
    ("Bambenek", 22, false),
    ("Abuse.ch", 10, true),
    ("Normshield", 9, false),
    ("Blocklist.de", 9, true),
    ("Malware Bytes", 9, false),
    ("Project Honeypot", 4, true),
    ("CoinBlockerLists", 4, false),
    ("NoThink", 3, false),
    ("Emerging Threats", 2, false),
    ("ImproWare", 2, false),
    ("Botvrij.EU", 2, false),
    ("IP Finder", 1, false),
    ("Cleantalk", 1, true),
    ("Sblam!", 1, false),
    ("Nixspam", 1, true),
    ("Blocklist Project", 1, false),
    ("BruteforceBlocker", 1, false),
    ("Cruzit", 1, false),
    ("Haley", 1, false),
    ("Botscout", 1, false),
    ("My IP", 1, false),
    ("Taichung", 1, false),
    ("Cisco Talos", 1, true),
    ("Alienvault", 1, false),
    ("Binary Defense", 1, false),
    ("GreenSnow", 1, false),
    ("Snort Labs", 1, false),
    ("GPF Comics", 1, false),
    ("Turris", 1, false),
    ("CINSscore", 1, false),
    ("Nullsecure", 1, false),
    ("DYN", 1, false),
    ("Malware Domain List", 1, false),
    ("Malc0de", 1, false),
    ("URLVir", 1, false),
    ("Threatcrowd", 1, false),
    ("CyberCrime", 1, false),
    ("IBM X-Force", 1, false),
    ("VXVault", 1, false),
    ("Stopforumspam", 1, true),
];

/// Total number of lists in the BLAG-derived catalogue.
pub const TOTAL_LISTS: usize = 151;

/// Category rotation for multi-list maintainers (Bad IPs' 44 lists are
/// per-service abuse trackers; Blocklist.de's nine are fail2ban exports).
fn categories_for(maintainer: &str) -> &'static [MaliceCategory] {
    use MaliceCategory::*;
    match maintainer {
        "Bad IPs" => &[
            Ssh, Http, Ftp, Bruteforce, Ddos, Scan, Voip, Banking, Backdoor, Spam, Reputation,
        ],
        "Bambenek"
        | "CoinBlockerLists"
        | "Malware Bytes"
        | "Malware Domain List"
        | "Malc0de"
        | "URLVir"
        | "VXVault"
        | "DYN"
        | "CyberCrime" => &[MalwareHosting],
        "Abuse.ch" => &[MalwareHosting, Ransomware, Reputation],
        "Normshield" => &[Scan, Reputation, Bruteforce],
        "Blocklist.de" => &[Ssh, Http, Ftp, Bruteforce, Scan],
        "Project Honeypot" => &[Spam, Scan],
        "NoThink" => &[Ssh, Backdoor, Scan],
        "Emerging Threats" => &[Reputation, Ddos],
        "ImproWare" => &[Spam],
        "Botvrij.EU" => &[MalwareHosting, Reputation],
        "Nixspam" | "Stopforumspam" | "Cleantalk" | "Sblam!" | "Botscout" | "My IP"
        | "IP Finder" => &[Spam],
        "BruteforceBlocker" | "Haley" | "GreenSnow" | "Cruzit" => &[Bruteforce, Ssh],
        "Cisco Talos" | "Alienvault" | "IBM X-Force" | "Threatcrowd" | "Turris" | "CINSscore"
        | "Snort Labs" | "Binary Defense" | "Nullsecure" | "Blocklist Project" | "GPF Comics"
        | "Taichung" | "DShield" => &[Reputation],
        "Spamhaus" => &[Spam],
        _ => &[Reputation],
    }
}

/// Prominence multiplier: how widely deployed / well-fed a maintainer's
/// sensors are. Tuned so the top-10 lists carry the paper's share of
/// listings.
fn prominence(maintainer: &str) -> f64 {
    match maintainer {
        "Stopforumspam" => 7.0,
        "Nixspam" => 6.0,
        "Alienvault" => 4.5,
        "Bad IPs" => 2.2,
        "Blocklist.de" => 2.4,
        "Abuse.ch" => 2.0,
        "Cleantalk" => 2.4,
        "Emerging Threats" => 1.6,
        "Cisco Talos" => 1.6,
        "Project Honeypot" => 1.4,
        _ => 1.0,
    }
}

fn base_rate(category: MaliceCategory) -> f64 {
    use MaliceCategory::*;
    match category {
        Spam => 0.055,
        Reputation => 0.035,
        Bruteforce | Ssh => 0.030,
        Scan | Http => 0.022,
        MalwareHosting | Ransomware => 0.025,
        Ddos => 0.020,
        Ftp | Backdoor | Banking | Voip => 0.012,
    }
}

/// Build the full 151-list catalogue. Deterministic: no RNG involved;
/// per-list variation comes from stable index arithmetic.
pub fn build_catalog() -> Vec<BlocklistMeta> {
    let mut out = Vec::with_capacity(TOTAL_LISTS);
    for (maintainer, count, survey_used) in MAINTAINERS {
        let cats = categories_for(maintainer);
        for i in 0..count {
            let category = cats[i as usize % cats.len()];
            let id = ListId(out.len() as u16);
            // Stable pseudo-jitter in [0.75, 1.25) from the list index.
            let jitter = 0.75 + f64::from((id.0 * 37) % 50) / 100.0;
            // A maintainer's later lists are narrower feeds.
            let depth = 1.0 / (1.0 + f64::from(i) * 0.25);
            let catch_rate =
                (base_rate(category) * prominence(maintainer) * jitter * depth).min(0.6);
            // Spam/reputation lists churn fast; malware lists retain longer.
            let grace_days = match category {
                MaliceCategory::Spam => 1.2,
                MaliceCategory::Reputation => 2.0,
                MaliceCategory::MalwareHosting | MaliceCategory::Ransomware => 6.0,
                _ => 2.5,
            } * jitter;
            out.push(BlocklistMeta {
                id,
                maintainer,
                name: if count == 1 {
                    maintainer.to_string()
                } else {
                    format!("{maintainer} #{:02} ({})", i + 1, category.name())
                },
                category,
                survey_used,
                catch_rate,
                grace_days,
            });
        }
    }
    debug_assert_eq!(out.len(), TOTAL_LISTS);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_151_lists() {
        let c = build_catalog();
        assert_eq!(c.len(), 151);
        let sum: u16 = MAINTAINERS.iter().map(|(_, n, _)| n).sum();
        assert_eq!(usize::from(sum), TOTAL_LISTS);
    }

    #[test]
    fn twenty_seven_lists_are_survey_marked() {
        let c = build_catalog();
        let marked = c.iter().filter(|l| l.survey_used).count();
        assert_eq!(marked, 27, "Table 2 stars 27 lists");
    }

    #[test]
    fn ids_are_dense_and_names_unique() {
        let c = build_catalog();
        let mut names = std::collections::HashSet::new();
        for (i, l) in c.iter().enumerate() {
            assert_eq!(l.id.0 as usize, i);
            assert!(names.insert(l.name.clone()), "duplicate name {}", l.name);
            assert!(l.catch_rate > 0.0 && l.catch_rate <= 0.6);
            assert!(l.grace_days > 0.0);
        }
    }

    #[test]
    fn spam_giants_have_top_catch_rates() {
        let c = build_catalog();
        let rate_of = |name: &str| {
            c.iter()
                .find(|l| l.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .catch_rate
        };
        let stopforumspam = rate_of("Stopforumspam");
        let nixspam = rate_of("Nixspam");
        // Everything else should be below the two spam giants.
        let max_other = c
            .iter()
            .filter(|l| l.name != "Stopforumspam" && l.name != "Nixspam")
            .map(|l| l.catch_rate)
            .fold(0.0f64, f64::max);
        assert!(stopforumspam > max_other);
        assert!(nixspam > max_other * 0.8);
    }

    #[test]
    fn maintainer_counts_match_table2() {
        let c = build_catalog();
        let count = |m: &str| c.iter().filter(|l| l.maintainer == m).count();
        assert_eq!(count("Bad IPs"), 44);
        assert_eq!(count("Bambenek"), 22);
        assert_eq!(count("Abuse.ch"), 10);
        assert_eq!(count("Blocklist.de"), 9);
        assert_eq!(count("Stopforumspam"), 1);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_catalog();
        let b = build_catalog();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.catch_rate, y.catch_rate);
        }
    }
}
