//! Feed simulation: from malicious activity to blocklist listings.
//!
//! This is where the paper's central problem is manufactured: blocklist
//! maintainers observe *events attributed to public source addresses*, not
//! to the responsible hosts. A spammer behind a NAT taints the gateway
//! address shared by all its neighbours; a bot on a daily-rotating dynamic
//! address taints whichever address it holds today — which someone else
//! holds tomorrow.
//!
//! Listing lifecycle per (list, ip): a caught event opens a listing after a
//! short triage delay; further caught events keep it alive; the listing
//! closes `grace` days after the last observed activity (re-appearing
//! activity after closure opens a *new* listing). That mechanism alone
//! reproduces Figure 7's ordering: dynamic addresses (whose activity stops
//! when the bot rotates away, ≈ a day) are delisted fastest; NATed
//! addresses (infections lasting days–weeks) linger; dedicated abuse hosts
//! stay near the whole window.

use crate::catalog::BlocklistMeta;
use crate::dataset::{BlocklistDataset, Listing};
use ar_simnet::alloc::AllocationPlan;
use ar_simnet::malice::{MaliceCategory, MaliceEvent};
use ar_simnet::par;
use ar_simnet::stats;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use ar_simnet::universe::Universe;
use rand::rngs::SmallRng;
use rand::Rng;
use std::net::Ipv4Addr;

/// Generate the malicious event stream of one measurement period.
///
/// Events carry the *public address* of the responsible host at event time,
/// pulled from the shared [`AllocationPlan`] — the same address the DHT
/// crawler would see the host on.
pub fn malice_events(
    universe: &Universe,
    alloc: &AllocationPlan,
    period: TimeWindow,
) -> Vec<MaliceEvent> {
    let mut out = Vec::new();
    for host in universe.malicious_hosts() {
        let profile = host.behavior.malice.as_ref().expect("filtered");
        let Some(active) = profile.active_window(&period) else {
            continue;
        };
        let mut rng = universe
            .seed
            .fork_idx(
                "malice-events",
                u64::from(host.id.0) ^ period.start.as_secs(),
            )
            .rng();
        let mut t = active.start;
        while t < active.end {
            if let Some(ip) = alloc.public_ip(universe, host.id, t) {
                out.push(MaliceEvent {
                    time: t,
                    ip,
                    category: profile.category,
                    actor: host.id,
                });
            }
            let gap = stats::sample_exponential(&mut rng, profile.mean_event_gap.as_secs() as f64)
                .max(60.0);
            t += SimDuration(gap as u64);
        }
    }
    out.sort_by_key(|e| (e.actor, e.time));
    out
}

/// How strongly a list of `list_cat` reacts to an event of `event_cat`.
/// Reputation lists ingest everything (at reduced sensitivity); other lists
/// only their own category.
fn category_affinity(list_cat: MaliceCategory, event_cat: MaliceCategory) -> f64 {
    if list_cat == event_cat {
        1.0
    } else if list_cat == MaliceCategory::Reputation {
        0.45
    } else {
        0.0
    }
}

/// Stable per-(list, actor) coin in [0, 1): splitmix64 of the pair.
fn visibility_hash(list: u16, actor: u32) -> f64 {
    let mut x = (u64::from(list) << 40) ^ u64::from(actor) ^ 0x9e37_79b9_7f4a_7c15;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Run one list's lifecycle over the event stream of one period.
///
/// Each (period, list) pair owns its own forked RNG (see
/// [`listings_for_period`]), which is what makes the per-list loop safe to
/// fan out across threads without changing the output.
fn listings_for_list(
    meta: &BlocklistMeta,
    events: &[MaliceEvent],
    period: TimeWindow,
    rng: &mut SmallRng,
) -> Vec<Listing> {
    let mut out = Vec::new();
    // Events arrive grouped by actor and sorted by time (see
    // `malice_events`); each (list, actor-run) is processed independently,
    // closing a listing when activity on an address lapses.
    let mut open: std::collections::BTreeMap<Ipv4Addr, (SimTime, SimTime)> =
        std::collections::BTreeMap::new();
    let grace = |rng: &mut SmallRng| {
        SimDuration(
            (stats::sample_lognormal(rng, meta.grace_days, 0.5).clamp(0.4, 20.0) * 86_400.0) as u64,
        )
    };
    for event in events {
        let affinity = category_affinity(meta.category, event.category);
        if affinity <= 0.0 {
            continue;
        }
        // A list's sensors either cover an actor's traffic or they
        // don't: without this per-(list, actor) visibility gate, any
        // per-event probability saturates over a burst of dozens of
        // events and every list converges to the same membership —
        // destroying the heavy-tailed list-size distribution the paper
        // reports (top-10 lists hold 53–72% of listings).
        let visibility = (meta.catch_rate * 6.0 * affinity).min(1.0);
        let coin = visibility_hash(meta.id.0, event.actor.0);
        if coin >= visibility {
            continue;
        }
        // Within coverage, individual events still get sampled.
        if !rng.gen_bool(0.35) {
            continue;
        }
        // Triage delay before the address appears on the feed.
        let start = event.time + SimDuration(rng.gen_range(0..86_400));
        match open.get_mut(&event.ip) {
            Some((_, last)) if start.saturating_sub(*last) <= SimDuration::from_days(3) => {
                *last = (*last).max(start);
            }
            Some(entry) => {
                // Activity resumed long after: close the old listing and
                // open a fresh one.
                let end = (entry.1 + grace(rng)).min(period.end);
                out.push(Listing {
                    list: meta.id,
                    ip: event.ip,
                    start: entry.0.min(period.end),
                    end,
                });
                *entry = (start, start);
            }
            None => {
                open.insert(event.ip, (start, start));
            }
        }
    }
    // BTreeMap drains in address order, so RNG consumption order is
    // deterministic run to run.
    for (ip, (first, last)) in open {
        let end = (last + grace(rng)).min(period.end);
        if first < end {
            out.push(Listing {
                list: meta.id,
                ip,
                start: first.min(period.end),
                end,
            });
        }
    }
    out.retain(|l| l.start < l.end);
    out
}

/// Run every list's lifecycle over the event stream of one period, fanning
/// the per-list work (the hottest loop of dataset generation — every list
/// scans every event) across up to `threads` scoped worker threads.
///
/// Determinism: each (period, list) derives its own RNG from the universe
/// seed, and [`par::par_map`] returns results in catalog order, so the
/// listing stream is identical for any thread count.
fn listings_for_period(
    universe: &Universe,
    catalog: &[BlocklistMeta],
    events: &[MaliceEvent],
    period: TimeWindow,
    period_idx: usize,
    threads: usize,
) -> Vec<Listing> {
    let per_list = par::par_map(threads, catalog, |meta| {
        let mut rng = universe
            .seed
            .fork_idx(
                "blocklist-feed",
                ((period_idx as u64) << 16) | u64::from(meta.id.0),
            )
            .rng();
        listings_for_list(meta, events, period, &mut rng)
    });
    per_list.into_iter().flatten().collect()
}

/// Produce the full dataset over the given measurement periods, using the
/// ambient thread budget ([`par::max_threads`]).
pub fn generate_dataset(
    universe: &Universe,
    alloc_per_period: &[(TimeWindow, &AllocationPlan)],
    catalog: Vec<BlocklistMeta>,
) -> BlocklistDataset {
    generate_dataset_threaded(universe, alloc_per_period, catalog, par::max_threads())
}

/// [`generate_dataset`] with an explicit worker-thread count. The output is
/// byte-identical for every `threads` value.
pub fn generate_dataset_threaded(
    universe: &Universe,
    alloc_per_period: &[(TimeWindow, &AllocationPlan)],
    catalog: Vec<BlocklistMeta>,
    threads: usize,
) -> BlocklistDataset {
    let mut listings = Vec::new();
    let mut periods = Vec::new();
    for (period_idx, (period, alloc)) in alloc_per_period.iter().enumerate() {
        periods.push(*period);
        let events = malice_events(universe, alloc, *period);
        listings.extend(listings_for_period(
            universe, &catalog, &events, *period, period_idx, threads,
        ));
    }
    BlocklistDataset::new(catalog, periods, listings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build_catalog;
    use ar_simnet::alloc::InterestSet;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::hosts::Attachment;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::PERIOD_1;

    struct Fx {
        universe: Universe,
        alloc: AllocationPlan,
    }

    impl Fx {
        fn new(seed: u64) -> Self {
            let universe = Universe::generate(Seed(seed), &UniverseConfig::tiny());
            let alloc = AllocationPlan::build(&universe, PERIOD_1, InterestSet::Observable);
            Fx { universe, alloc }
        }
        fn dataset(&self) -> BlocklistDataset {
            generate_dataset(&self.universe, &[(PERIOD_1, &self.alloc)], build_catalog())
        }
    }

    #[test]
    fn events_use_current_public_addresses() {
        let fx = Fx::new(201);
        let events = malice_events(&fx.universe, &fx.alloc, PERIOD_1);
        assert!(!events.is_empty());
        for e in events.iter().take(500) {
            let actor = fx.universe.host(e.actor);
            match actor.attachment {
                Attachment::Static { ip } => assert_eq!(e.ip, ip),
                Attachment::NatUser { nat, .. } => {
                    assert_eq!(
                        e.ip,
                        fx.universe.nat(nat).ip,
                        "NAT events taint the gateway"
                    )
                }
                Attachment::DynamicSub { .. } => {
                    assert_eq!(
                        fx.alloc.public_ip(&fx.universe, e.actor, e.time),
                        Some(e.ip)
                    );
                }
            }
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let fx = Fx::new(202);
        let a = fx.dataset();
        let b = fx.dataset();
        assert_eq!(a.listings, b.listings);
    }

    #[test]
    fn thread_count_does_not_change_listings() {
        let fx = Fx::new(202);
        let serial =
            generate_dataset_threaded(&fx.universe, &[(PERIOD_1, &fx.alloc)], build_catalog(), 1);
        let parallel =
            generate_dataset_threaded(&fx.universe, &[(PERIOD_1, &fx.alloc)], build_catalog(), 8);
        assert_eq!(serial.listings, parallel.listings);
    }

    #[test]
    fn listings_stay_within_period() {
        let fx = Fx::new(203);
        let d = fx.dataset();
        assert!(d.total_listings() > 0);
        for l in &d.listings {
            assert!(l.start < l.end);
            assert!(l.end <= PERIOD_1.end);
            // Starts may lag events by the triage delay but never precede
            // the period.
            assert!(l.start >= PERIOD_1.start);
        }
    }

    #[test]
    fn top_lists_dominate_listings() {
        let fx = Fx::new(204);
        let d = fx.dataset();
        let mut counts: Vec<usize> = d.listings_per_list().values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top10: usize = counts.iter().take(10).sum();
        // Paper: the top-10 lists contribute 53–72% of listings. Allow a
        // wide band for the tiny universe.
        let share = top10 as f64 / total as f64;
        assert!(
            (0.35..0.95).contains(&share),
            "top-10 share {share:.2} implausible"
        );
    }

    #[test]
    fn some_addresses_are_multi_listed() {
        let fx = Fx::new(205);
        let d = fx.dataset();
        let multi = d
            .all_ips()
            .iter()
            .filter(|ip| d.lists_containing(*ip).len() >= 2)
            .count();
        assert!(multi > 0, "cross-list corroboration must occur");
        // Listings strictly exceed distinct IPs (the paper's listings ≠
        // addresses distinction).
        assert!(d.total_listings() > d.all_ips().len());
    }

    #[test]
    fn dedicated_hosts_stay_listed_longer_than_dynamic() {
        let fx = Fx::new(206);
        let d = fx.dataset();
        let mut dynamic_days = Vec::new();
        let mut static_days = Vec::new();
        for ip in d.all_ips() {
            let days = d.days_listed(ip) as f64;
            if fx.universe.is_truly_dynamic(ip) {
                dynamic_days.push(days);
            } else if matches!(
                fx.universe.policy_of(ip),
                Some(ar_simnet::universe::AddressPolicy::Static)
            ) {
                static_days.push(days);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!dynamic_days.is_empty() && !static_days.is_empty());
        assert!(
            mean(&dynamic_days) < mean(&static_days),
            "dynamic {:.1}d vs static {:.1}d",
            mean(&dynamic_days),
            mean(&static_days)
        );
    }
}
