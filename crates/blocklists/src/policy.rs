//! Executable §6 policy: the published reused-address list and the
//! block/greylist split it drives.
//!
//! "Operators that use DDoS blocklists … should block all traffic listed …
//! even if there is collateral damage due to reused addresses. On the
//! other hand, network operators using application-specific blocklists
//! (such as spam blocklists) that require more accuracy, can use our list
//! to implement greylisting" (paper §6).
//!
//! The types live here (not in the study crate) so that downstream
//! consumers — the `ar-serve` reputation service foremost — can apply the
//! policy to a feed entry without dragging in the whole measurement
//! pipeline. The study crate re-exports everything under its historical
//! paths.

use crate::catalog::{BlocklistMeta, ListId};
use ar_simnet::ip::Prefix24;
use ar_simnet::malice::MaliceCategory;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Why an entry is on the reused-address list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReuseEvidence {
    /// ≥ `users` simultaneous BitTorrent users observed behind the IP.
    Natted { users: u32 },
    /// Covering /24 detected as dynamically allocated via RIPE probes.
    DynamicPrefix,
}

/// One entry of the published list.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ReusedAddressEntry {
    pub ip: Ipv4Addr,
    pub evidence: ReuseEvidence,
    /// Currently blocklisted by this many lists.
    pub lists: u32,
}

/// Render the list in the published plain-text layout.
pub fn render_reused_list(entries: &[ReusedAddressEntry]) -> String {
    let mut s = String::from("# reused blocklisted addresses\n# ip\tevidence\tlists\n");
    for e in entries {
        let evidence = match e.evidence {
            ReuseEvidence::Natted { users } => format!("nat:{users}"),
            ReuseEvidence::DynamicPrefix => format!("dynamic:{}", Prefix24::of(e.ip)),
        };
        let _ = writeln!(s, "{}\t{evidence}\t{}", e.ip, e.lists);
    }
    s
}

/// Parse the published format back (round-trip for consumers).
pub fn parse_reused_list(input: &str) -> Result<Vec<ReusedAddressEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let err = |m: String| format!("line {}: {m}", i + 1);
        let ip: Ipv4Addr = fields
            .next()
            .ok_or_else(|| err("missing ip".into()))?
            .parse()
            .map_err(|e| err(format!("bad ip: {e}")))?;
        let evidence_raw = fields
            .next()
            .ok_or_else(|| err("missing evidence".into()))?;
        let evidence = if let Some(users) = evidence_raw.strip_prefix("nat:") {
            ReuseEvidence::Natted {
                users: users.parse().map_err(|e| err(format!("bad users: {e}")))?,
            }
        } else if evidence_raw.starts_with("dynamic:") {
            ReuseEvidence::DynamicPrefix
        } else {
            return Err(err(format!("unknown evidence {evidence_raw:?}")));
        };
        let lists: u32 = fields
            .next()
            .ok_or_else(|| err("missing list count".into()))?
            .parse()
            .map_err(|e| err(format!("bad list count: {e}")))?;
        out.push(ReusedAddressEntry {
            ip,
            evidence,
            lists,
        });
    }
    Ok(out)
}

/// What an operator should do with one feed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Action {
    /// Drop traffic outright.
    Block,
    /// Greylist: delay/challenge instead of dropping (SMTP tempfail,
    /// CAPTCHA, rate-limit) so legitimate co-holders of the address
    /// retain service.
    Greylist,
}

/// Operator policy knobs.
#[derive(Debug, Clone)]
pub struct GreylistPolicy {
    /// Categories whose feeds are volumetric-defence lists: collateral
    /// damage is accepted and reused entries stay blocked (paper: DDoS).
    pub always_block: Vec<MaliceCategory>,
    /// Minimum detected users behind a NAT before an entry is considered
    /// too costly to hard-block (1 = any confirmed NAT).
    pub min_nat_users: u32,
    /// Whether dynamic-prefix evidence downgrades to greylist.
    pub greylist_dynamic: bool,
}

impl Default for GreylistPolicy {
    fn default() -> Self {
        GreylistPolicy {
            always_block: vec![MaliceCategory::Ddos],
            min_nat_users: 2,
            greylist_dynamic: true,
        }
    }
}

/// The split feed for one blocklist.
#[derive(Debug, Clone, Serialize)]
pub struct SplitFeed {
    pub list: ListId,
    pub block: Vec<Ipv4Addr>,
    pub greylist: Vec<Ipv4Addr>,
}

impl SplitFeed {
    pub fn greylist_share(&self) -> f64 {
        let total = self.block.len() + self.greylist.len();
        if total == 0 {
            0.0
        } else {
            self.greylist.len() as f64 / total as f64
        }
    }
}

/// Decide the action for one feed entry of `meta` given reuse `evidence`.
pub fn action_for(
    policy: &GreylistPolicy,
    meta: &BlocklistMeta,
    evidence: Option<&ReusedAddressEntry>,
) -> Action {
    if policy.always_block.contains(&meta.category) {
        return Action::Block;
    }
    match evidence.map(|e| e.evidence) {
        Some(ReuseEvidence::Natted { users }) if users >= policy.min_nat_users => Action::Greylist,
        Some(ReuseEvidence::DynamicPrefix) if policy.greylist_dynamic => Action::Greylist,
        _ => Action::Block,
    }
}

/// Split one list's membership into block/greylist sets.
pub fn split_feed(
    policy: &GreylistPolicy,
    meta: &BlocklistMeta,
    members: impl IntoIterator<Item = Ipv4Addr>,
    reused: &[ReusedAddressEntry],
) -> SplitFeed {
    let by_ip: BTreeMap<Ipv4Addr, &ReusedAddressEntry> = reused.iter().map(|e| (e.ip, e)).collect();
    let mut block = Vec::new();
    let mut greylist = Vec::new();
    for ip in members {
        match action_for(policy, meta, by_ip.get(&ip).copied()) {
            Action::Block => block.push(ip),
            Action::Greylist => greylist.push(ip),
        }
    }
    block.sort();
    greylist.sort();
    SplitFeed {
        list: meta.id,
        block,
        greylist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::build_catalog;

    fn entry(ip: &str, evidence: ReuseEvidence) -> ReusedAddressEntry {
        ReusedAddressEntry {
            ip: ip.parse().unwrap(),
            evidence,
            lists: 1,
        }
    }

    fn meta_of(category: MaliceCategory) -> BlocklistMeta {
        build_catalog()
            .into_iter()
            .find(|m| m.category == category)
            .expect("catalogue covers category")
    }

    #[test]
    fn spam_feeds_greylist_reused_entries() {
        let policy = GreylistPolicy::default();
        let spam = meta_of(MaliceCategory::Spam);
        let reused = vec![
            entry("192.0.2.1", ReuseEvidence::Natted { users: 5 }),
            entry("192.0.2.2", ReuseEvidence::DynamicPrefix),
        ];
        let members: Vec<Ipv4Addr> = vec![
            "192.0.2.1".parse().unwrap(),
            "192.0.2.2".parse().unwrap(),
            "192.0.2.3".parse().unwrap(),
        ];
        let split = split_feed(&policy, &spam, members, &reused);
        assert_eq!(split.greylist.len(), 2);
        assert_eq!(split.block.len(), 1);
        assert!((split.greylist_share() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ddos_feeds_always_block() {
        let policy = GreylistPolicy::default();
        let ddos = meta_of(MaliceCategory::Ddos);
        let reused = vec![entry("192.0.2.1", ReuseEvidence::Natted { users: 50 })];
        let split = split_feed(&policy, &ddos, vec!["192.0.2.1".parse().unwrap()], &reused);
        assert!(split.greylist.is_empty(), "DDoS accepts collateral damage");
        assert_eq!(split.block.len(), 1);
    }

    #[test]
    fn thresholds_respected() {
        let policy = GreylistPolicy {
            min_nat_users: 10,
            ..GreylistPolicy::default()
        };
        let spam = meta_of(MaliceCategory::Spam);
        assert_eq!(
            action_for(
                &policy,
                &spam,
                Some(&entry("192.0.2.1", ReuseEvidence::Natted { users: 5 }))
            ),
            Action::Block,
            "below threshold stays blocked"
        );
        assert_eq!(
            action_for(
                &policy,
                &spam,
                Some(&entry("192.0.2.1", ReuseEvidence::Natted { users: 10 }))
            ),
            Action::Greylist
        );
        let no_dynamic = GreylistPolicy {
            greylist_dynamic: false,
            ..GreylistPolicy::default()
        };
        assert_eq!(
            action_for(
                &no_dynamic,
                &spam,
                Some(&entry("192.0.2.2", ReuseEvidence::DynamicPrefix))
            ),
            Action::Block
        );
    }

    #[test]
    fn unlisted_addresses_block() {
        let policy = GreylistPolicy::default();
        let spam = meta_of(MaliceCategory::Spam);
        assert_eq!(action_for(&policy, &spam, None), Action::Block);
    }

    #[test]
    fn reused_list_text_round_trips() {
        let entries = vec![
            entry("192.0.2.1", ReuseEvidence::Natted { users: 7 }),
            entry("192.0.2.2", ReuseEvidence::DynamicPrefix),
        ];
        let text = render_reused_list(&entries);
        let back = parse_reused_list(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].ip, entries[0].ip);
        assert_eq!(back[0].evidence, ReuseEvidence::Natted { users: 7 });
        assert_eq!(back[1].evidence, ReuseEvidence::DynamicPrefix);
    }
}
