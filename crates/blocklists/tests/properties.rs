//! Property tests for feed parsers and listing arithmetic.

use ar_blocklists::{
    parse_cidr, parse_dshield, parse_plain, render_dshield, render_plain, FeedEntry, ListId,
    Listing,
};
use ar_simnet::time::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// Parsers are total: arbitrary text never panics.
    #[test]
    fn parsers_total(text in ".{0,400}") {
        let _ = parse_plain(&text);
        let _ = parse_cidr(&text);
        let _ = parse_dshield(&text);
    }

    /// Plain render → parse returns the sorted, deduped input set.
    #[test]
    fn plain_roundtrip(ips_raw in proptest::collection::vec(any::<u32>(), 0..100)) {
        let ips: Vec<Ipv4Addr> = ips_raw.iter().map(|&x| Ipv4Addr::from(x)).collect();
        let rendered = render_plain("prop", &ips);
        let parsed = parse_plain(&rendered).unwrap();
        let mut expect: Vec<Ipv4Addr> = ips;
        expect.sort();
        expect.dedup();
        prop_assert_eq!(parsed, expect);
    }

    /// DShield render → parse round-trips ranges.
    #[test]
    fn dshield_roundtrip(pairs in proptest::collection::vec((any::<u32>(), 0u32..512), 0..50)) {
        let entries: Vec<FeedEntry> = pairs
            .iter()
            .map(|&(start, span)| {
                let start = start.min(u32::MAX - span);
                FeedEntry::Range(Ipv4Addr::from(start), Ipv4Addr::from(start + span))
            })
            .collect();
        let text = render_dshield("prop", &entries);
        let back = parse_dshield(&text).unwrap();
        prop_assert_eq!(back, entries);
    }

    /// CIDR containment agrees with explicit expansion for small blocks.
    #[test]
    fn cidr_contains_matches_expansion(net in any::<u32>(), len in 24u8..=32, probe in any::<u32>()) {
        let entry = FeedEntry::Cidr(Ipv4Addr::from(net), len);
        let probe_ip = Ipv4Addr::from(probe);
        let by_contains = entry.contains(probe_ip);
        let by_expansion = entry.addrs().any(|a| a == probe_ip);
        prop_assert_eq!(by_contains, by_expansion);
        prop_assert_eq!(entry.addrs().count() as u64, entry.size());
    }

    /// Listing day arithmetic: days() is ceil(duration/86400) and at least
    /// 1 for any non-empty interval.
    #[test]
    fn listing_days(start in 0u64..10_000_000, len in 1u64..5_000_000) {
        let l = Listing {
            list: ListId(0),
            ip: Ipv4Addr::new(192, 0, 2, 1),
            start: SimTime(start),
            end: SimTime(start + len),
        };
        let expect = (len + 86_399) / 86_400;
        prop_assert_eq!(l.days(), expect);
        prop_assert!(l.days() >= 1);
        prop_assert!(l.active_at(SimTime(start)));
        prop_assert!(!l.active_at(SimTime(start + len)));
    }
}
