//! Property tests for the windowed telemetry layer.
//!
//! The load-bearing invariant: a [`WindowRing`] never loses a recorded
//! delta — at every step, re-folding evicted + closed + open windows
//! reproduces the independently maintained cumulative registry, across
//! any wraparound pattern. Plus: the trace reservoir's bottom-k sample
//! is a pure function of the offered ordinal *set*, never of offer
//! order.

use ar_obs::{TraceRecord, TraceSampler, WindowRing};
use proptest::prelude::*;

/// One scripted action against the ring.
#[derive(Debug, Clone)]
enum Op {
    Add(u8, u64),
    Observe(u8, u64),
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u64..1000).prop_map(|(n, v)| Op::Add(n % 4, v)),
        (any::<u8>(), any::<u64>()).prop_map(|(n, v)| Op::Observe(n % 4, v)),
        (0u64..64).prop_map(Op::Advance),
    ]
}

fn counter_name(n: u8) -> String {
    format!("c{n}")
}

proptest! {
    /// Window deltas always sum to the cumulative registry, no matter
    /// how ticks advance or how small the ring is (forcing evictions).
    #[test]
    fn ring_refold_equals_cumulative(
        ticks_per_window in 1u64..16,
        capacity in 1usize..5,
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let mut ring = WindowRing::new(ticks_per_window, capacity);
        let mut tick = 0u64;
        for op in ops {
            match op {
                Op::Add(n, v) => ring.add(&counter_name(n), v),
                Op::Observe(n, v) => ring.observe(&counter_name(n), v),
                Op::Advance(delta) => {
                    tick += delta;
                    ring.advance(tick);
                }
            }
            let refold = ring.refold();
            prop_assert_eq!(&refold.counters, &ring.cumulative().counters);
            prop_assert_eq!(&refold.histograms, &ring.cumulative().histograms);
        }
    }

    /// Merging per-window histogram deltas preserves count and sum
    /// exactly (the bucket fold is lossless).
    #[test]
    fn histogram_deltas_are_lossless(
        values in proptest::collection::vec(0u64..(1u64 << 32), 1..100),
        ticks_per_window in 1u64..8,
    ) {
        let mut ring = WindowRing::new(ticks_per_window, 2);
        for (i, v) in values.iter().enumerate() {
            ring.observe("h", *v);
            ring.advance(i as u64 + 1);
        }
        let total = &ring.refold().histograms["h"];
        prop_assert_eq!(total.count, values.len() as u64);
        prop_assert_eq!(total.sum, values.iter().sum::<u64>());
    }

    /// The bottom-k reservoir keeps the same sample for any permutation
    /// of the same ordinal set.
    #[test]
    fn reservoir_sample_is_order_independent(
        seed in any::<u64>(),
        cap in 1usize..16,
        ordinals in proptest::collection::btree_set(any::<u64>(), 1..64),
        shuffle_seed in any::<u64>(),
    ) {
        let record = |o: u64| TraceRecord {
            ordinal: o,
            shard: 0,
            generation: 1,
            queue_depth: 0,
            batch_len: 1,
            outcome: "served".to_string(),
            fault: None,
        };
        let forward: Vec<u64> = ordinals.iter().copied().collect();
        // Deterministic pseudo-shuffle of the same set.
        let mut shuffled = forward.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let run = |order: &[u64]| {
            let mut s = TraceSampler::new(0, cap, seed);
            for &o in order {
                s.offer(record(o));
            }
            s.canonical_log()
        };
        prop_assert_eq!(run(&forward), run(&shuffled));
    }
}
