//! `ar-obs` — observability for the measurement pipeline.
//!
//! One [`Obs`] handle carries three instruments through every layer of a
//! study run:
//!
//! * a **metrics registry** — named [`Counter`]s, [`Gauge`]s and log₂-bucket
//!   [`Histogram`]s backed by atomics, so the parallel orchestrator's tasks
//!   can publish without contending on a shared lock;
//! * **phase spans** — nested wall-clock timers (`study`, `study/crawl[0]`,
//!   `study/atlas/detect`, …) aggregated per path, recording how often each
//!   span ran, the summed per-thread work time, and the longest single run;
//! * an **event log** — discrete notable events ([`EventKind`]: retry fired,
//!   checkpoint resumed, feed day bridged, AS blackout entered/exited,
//!   panic-guard degraded a phase), each carrying a count so high-volume
//!   occurrences aggregate into one record.
//!
//! [`Obs::report`] snapshots everything into a serde-serializable
//! [`RunReport`] (sorted maps, events in a canonical order) which the CLI
//! writes via `--metrics-out` and [`RunReport::render_md`] summarizes.
//!
//! For *live* services the cumulative registry is complemented by a
//! windowed layer: [`WindowRing`] aggregates per-window metric deltas
//! over a deterministic logical clock of query-ordinal ticks, and
//! [`TraceSampler`] keeps a seeded, order-independent sample of
//! [`TraceRecord`]s — both pure functions of the tick stream, never of
//! wall time.
//!
//! ## Determinism contract
//!
//! Instrumentation must never perturb study output: an [`Obs::disabled`]
//! handle turns every operation into a no-op, and an enabled one only
//! *observes* — it draws no randomness and feeds nothing back. Counters,
//! histograms and events commute, and the snapshot canonicalizes order, so
//! every non-timing [`RunReport`] field is identical across thread counts.

mod event;
mod report;
mod trace;
mod window;

pub use event::{Event, EventKind};
pub use report::{BucketCount, HistogramSnapshot, PhaseHealth, RunReport, SpanSnapshot};
pub use trace::{TraceRecord, TraceSampler};
pub use window::{Window, WindowHistogram, WindowRing};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets: one for zero, 32 log₂ buckets covering
/// `[2^(i-1), 2^i)`, and one open-ended overflow bucket for `>= 2^32`.
pub const HISTOGRAM_BUCKETS: usize = 34;

/// Bucket a value falls into: `0 -> 0`, otherwise `[2^(i-1), 2^i) -> i`,
/// clamped to the open overflow bucket. Pure and stable — the bucket
/// boundaries are part of the report format.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// `(lo, hi)` bounds of a bucket; `hi = None` marks the open overflow
/// bucket. `lo` is inclusive, `hi` exclusive; bucket 0 holds exactly zero.
pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
    match i {
        0 => (0, Some(1)),
        _ if i < HISTOGRAM_BUCKETS - 1 => (1 << (i - 1), Some(1 << i)),
        _ => (1 << (HISTOGRAM_BUCKETS - 2), None),
    }
}

struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    // Writers use AcqRel and the snapshot reader Acquire (R6): snapshots
    // feed serialized artifacts, so worker-thread increments must be
    // visible to whichever thread renders the report.
    fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::AcqRel);
        self.sum.fetch_add(v, Ordering::AcqRel);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::AcqRel);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Acquire);
                (count > 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    BucketCount { lo, hi, count }
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Acquire),
            sum: self.sum.load(Ordering::Acquire),
            buckets,
        }
    }
}

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_secs: f64,
    max_secs: f64,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    events: Mutex<Vec<Event>>,
    health: Mutex<BTreeMap<String, PhaseHealth>>,
}

/// A named monotonic counter. Cheap to clone; hold the handle across a hot
/// loop instead of re-looking it up by name. A handle from a disabled
/// [`Obs`] is a no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::AcqRel);
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Acquire))
    }
}

/// A named last-write gauge. Writers must be unique per name (or ordered by
/// the caller) for the value to be deterministic.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Release);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Acquire))
    }
}

/// A named fixed-bucket log₂ histogram (see [`bucket_index`]).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }
}

/// A locally-accumulated batch of counter adds and gauge writes.
///
/// Hot paths (per-shard crawl recording, per-period phase summaries) fill
/// a batch with plain map updates — no locks, no atomics — and publish it
/// with [`ObsBatch::merge_into`], which takes each registry lock **once**
/// per batch instead of once per metric. Counters commute, so per-shard
/// batches merged in any order produce the same registry state; gauges
/// follow the registry's usual last-write rule, so keep gauge names unique
/// per batch source (phase-labelled, as the crawl does).
#[derive(Debug, Clone, Default)]
pub struct ObsBatch {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
}

impl ObsBatch {
    pub fn new() -> Self {
        ObsBatch::default()
    }

    /// Accumulate `n` onto the batched counter `name`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_default() += n;
    }

    /// Set the batched gauge `name` (last write within the batch wins).
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Fold another batch into this one (shard batches into a phase batch).
    pub fn absorb(&mut self, other: ObsBatch) {
        for (name, n) in other.counters {
            *self.counters.entry(name).or_default() += n;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
    }

    /// Publish the batch into `obs`, locking each registry once. No-op on
    /// a disabled handle.
    pub fn merge_into(self, obs: &Obs) {
        let Some(inner) = &obs.inner else {
            return;
        };
        if !self.counters.is_empty() {
            let mut counters = inner.counters.lock();
            for (name, n) in self.counters {
                counters
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .fetch_add(n, Ordering::AcqRel);
            }
        }
        if !self.gauges.is_empty() {
            let mut gauges = inner.gauges.lock();
            for (name, v) in self.gauges {
                gauges
                    .entry(name)
                    .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                    .store(v, Ordering::Release);
            }
        }
    }
}

/// RAII timer for one span run: records the elapsed wall time under its
/// path on drop. Obtain via [`Obs::span`].
pub struct SpanGuard {
    obs: Obs,
    path: String,
    start: Instant,
}

impl SpanGuard {
    /// Stop the timer now (dropping does the same; this just names it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        self.obs.record_span(&self.path, secs);
    }
}

/// Shared observability handle. Clone freely — all clones publish into the
/// same registry. [`Obs::disabled`] (also the `Default`) makes every
/// operation a no-op so instrumented code needs no `if` at call sites.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// A live registry.
    pub fn new() -> Self {
        Obs {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op handle: every instrument it hands out discards its input.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get-or-create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        }))
    }

    /// Add `n` to the counter `name` (one-shot; prefer [`Obs::counter`] in
    /// loops).
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled() {
            self.counter(name).add(n);
        }
    }

    /// Get-or-create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicI64::new(0))),
            )
        }))
    }

    pub fn set_gauge(&self, name: &str, v: i64) {
        if self.enabled() {
            self.gauge(name).set(v);
        }
    }

    /// Get-or-create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.histogram(name).observe(v);
        }
    }

    /// Start a timer for the span `path`; stops when the guard drops.
    pub fn span(&self, path: &str) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            path: path.to_string(),
            start: Instant::now(),
        }
    }

    /// Record one completed run of `path` taking `secs`.
    pub fn record_span(&self, path: &str, secs: f64) {
        if let Some(inner) = &self.inner {
            let mut spans = inner.spans.lock();
            let agg = spans.entry(path.to_string()).or_default();
            agg.count += 1;
            agg.total_secs += secs;
            agg.max_secs = agg.max_secs.max(secs);
        }
    }

    /// Log a discrete event. `time` is in deterministic sim-time seconds
    /// where the event has one; `count` aggregates repeats (e.g. all ping
    /// retries of one crawl period in a single record).
    pub fn event(
        &self,
        phase: &str,
        kind: EventKind,
        time: Option<u64>,
        count: u64,
        detail: impl Into<String>,
    ) {
        if let Some(inner) = &self.inner {
            inner.events.lock().push(Event {
                phase: phase.to_string(),
                kind,
                time,
                count,
                detail: detail.into(),
            });
        }
    }

    /// Record the terminal health verdict of a phase, with the triggering
    /// message when it degraded or failed.
    pub fn set_phase_health(&self, phase: &str, status: &str, reason: &str) {
        if let Some(inner) = &self.inner {
            inner.health.lock().insert(
                phase.to_string(),
                PhaseHealth {
                    status: status.to_string(),
                    reason: reason.to_string(),
                },
            );
        }
    }

    /// Snapshot everything into a canonical [`RunReport`]: maps are sorted
    /// by name, spans by path, events by (phase, kind, time, detail), so
    /// the report is independent of publication order.
    pub fn report(&self) -> RunReport {
        let Some(inner) = &self.inner else {
            return RunReport::default();
        };
        let counters = inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Acquire)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Acquire)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let spans = inner
            .spans
            .lock()
            .iter()
            .map(|(path, agg)| SpanSnapshot {
                path: path.clone(),
                count: agg.count,
                total_secs: agg.total_secs,
                max_secs: agg.max_secs,
            })
            .collect();
        let mut events: Vec<Event> = inner.events.lock().clone();
        events.sort_by(|a, b| {
            (&a.phase, a.kind, a.time, &a.detail, a.count)
                .cmp(&(&b.phase, b.kind, b.time, &b.detail, b.count))
        });
        let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
        for e in &events {
            *event_counts.entry(e.kind.name().to_string()).or_default() += e.count;
        }
        let health = inner.health.lock().clone();
        RunReport {
            counters,
            gauges,
            histograms,
            spans,
            events,
            event_counts,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let obs = Obs::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let handle = obs.counter("test.hits");
                let obs = obs.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        if i % 2 == 0 {
                            handle.inc();
                        } else {
                            // Exercise the by-name path under contention too.
                            obs.add("test.hits", 1);
                        }
                    }
                });
            }
        });
        assert_eq!(obs.report().counters["test.hits"], threads * per_thread);
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..32 {
            assert_eq!(bucket_index(1 << k), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(bucket_index((1 << k) - 1), k, "2^{k}-1 closes bucket {k}");
        }
        assert_eq!(bucket_index(1 << 32), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bounds agree with the index function on every edge.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            if let Some(hi) = hi {
                assert_eq!(bucket_index(hi - 1), i);
                assert_eq!(bucket_index(hi), i + 1);
            }
        }
    }

    #[test]
    fn histogram_snapshot_counts_and_sums() {
        let obs = Obs::new();
        let h = obs.histogram("test.sizes");
        for v in [0, 1, 1, 3, 100] {
            h.observe(v);
        }
        let snap = &obs.report().histograms["test.sizes"];
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 105);
        let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
        assert_eq!(
            snap.buckets[0],
            BucketCount {
                lo: 0,
                hi: Some(1),
                count: 1
            }
        );
        assert_eq!(
            snap.buckets[1],
            BucketCount {
                lo: 1,
                hi: Some(2),
                count: 2
            }
        );
    }

    #[test]
    fn spans_aggregate_per_path() {
        let obs = Obs::new();
        obs.record_span("study/crawl[0]", 1.5);
        obs.record_span("study/crawl[0]", 0.5);
        obs.record_span("study", 2.0);
        let report = obs.report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].path, "study");
        let crawl = &report.spans[1];
        assert_eq!(crawl.count, 2);
        assert!((crawl.total_secs - 2.0).abs() < 1e-9);
        assert!((crawl.max_secs - 1.5).abs() < 1e-9);
    }

    #[test]
    fn events_snapshot_in_canonical_order_with_kind_totals() {
        let obs = Obs::new();
        obs.event("crawl[1]", EventKind::RetryFired, None, 7, "loss burst");
        obs.event(
            "blocklists",
            EventKind::FeedDayMissed,
            Some(86_400),
            3,
            "feed 2",
        );
        obs.event("crawl[0]", EventKind::RetryFired, None, 2, "loss burst");
        let report = obs.report();
        let phases: Vec<&str> = report.events.iter().map(|e| e.phase.as_str()).collect();
        assert_eq!(phases, ["blocklists", "crawl[0]", "crawl[1]"]);
        assert_eq!(report.event_counts["retry_fired"], 9);
        assert_eq!(report.event_counts["feed_day_missed"], 3);
    }

    #[test]
    fn batch_merges_counters_and_gauges_with_one_publish() {
        let obs = Obs::new();
        obs.add("pre.existing", 5);

        let mut shard_a = ObsBatch::new();
        shard_a.add("crawler.sent", 10);
        shard_a.add("crawler.sent", 7);
        shard_a.add("pre.existing", 1);
        let mut shard_b = ObsBatch::new();
        shard_b.add("crawler.sent", 3);
        shard_b.set_gauge("crawler.backlog.crawl[0]", 42);

        // Shard batches fold into a phase batch, then publish once.
        let mut phase = ObsBatch::new();
        assert!(phase.is_empty());
        phase.absorb(shard_a);
        phase.absorb(shard_b);
        assert!(!phase.is_empty());
        phase.merge_into(&obs);

        let report = obs.report();
        assert_eq!(report.counters["crawler.sent"], 20);
        assert_eq!(report.counters["pre.existing"], 6);
        assert_eq!(report.gauges["crawler.backlog.crawl[0]"], 42);
    }

    #[test]
    fn batch_into_disabled_obs_is_a_noop() {
        let obs = Obs::disabled();
        let mut batch = ObsBatch::new();
        batch.add("x", 1);
        batch.set_gauge("g", 2);
        batch.merge_into(&obs);
        assert_eq!(obs.report(), RunReport::default());
    }

    #[test]
    fn disabled_obs_is_a_noop() {
        let obs = Obs::disabled();
        obs.add("x", 5);
        obs.counter("x").inc();
        obs.observe("h", 1);
        obs.set_gauge("g", 9);
        obs.event("p", EventKind::RetryFired, None, 1, "");
        obs.set_phase_health("p", "ok", "");
        obs.record_span("s", 1.0);
        obs.span("s2").finish();
        assert!(!obs.enabled());
        assert_eq!(obs.report(), RunReport::default());
    }
}
