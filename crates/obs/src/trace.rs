//! Deterministic query tracing.
//!
//! A [`TraceRecord`] captures one query batch's admission→shard→verdict
//! path: which ordinal it was, which shard answered, against which
//! snapshot generation, how deep the admission queue was, and any fault
//! annotation the chaos plan had scheduled for it. [`TraceSampler`]
//! decides *which* ordinals to keep with two deterministic policies
//! composed together:
//!
//! * **every-Nth** — ordinals divisible by `every` are captured into a
//!   recency buffer, giving a uniform stride through the run's tail;
//! * **seeded reservoir** — a bottom-k priority reservoir: each ordinal
//!   gets priority `splitmix64(seed ^ ordinal)` and the k smallest
//!   priorities are retained. Unlike the classic index-swap reservoir,
//!   the bottom-k formulation is *insertion-order independent*: two runs
//!   that offer the same set of ordinals keep the same sample even if
//!   concurrent shard workers raced differently — which is exactly the
//!   property the determinism matrix pins.
//!
//! No wall clock, no ambient RNG (ar-lint R2): every decision is a pure
//! function of `(seed, ordinal)`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sampled query batch's path through the serving stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Logical admission ordinal (the telemetry tick base).
    pub ordinal: u64,
    /// Shard worker that answered.
    pub shard: u32,
    /// Snapshot generation the verdicts were computed against.
    pub generation: u64,
    /// Admission-queue depth observed when the batch was picked up.
    pub queue_depth: u64,
    /// Queries in the batch.
    pub batch_len: u32,
    /// Terminal disposition: `served`, `shed`, …
    pub outcome: String,
    /// Chaos-plan annotation (e.g. a scheduled latency spike), if any.
    pub fault: Option<String>,
}

/// Deterministic two-policy trace sampler. Not thread-safe by itself;
/// the owner serializes offers at the point ordinals are assigned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSampler {
    /// Capture every ordinal divisible by this (0 disables the stride).
    every: u64,
    /// Bottom-k reservoir capacity (0 disables the reservoir).
    reservoir_cap: usize,
    seed: u64,
    /// Most recent stride captures, bounded by `reservoir_cap.max(16)`.
    nth: VecDeque<TraceRecord>,
    /// `(priority, record)`, unordered; the k smallest priorities win.
    reservoir: Vec<(u64, TraceRecord)>,
    offered: u64,
    captured: u64,
}

impl TraceSampler {
    pub fn new(every: u64, reservoir_cap: usize, seed: u64) -> TraceSampler {
        TraceSampler {
            every,
            reservoir_cap,
            seed,
            nth: VecDeque::new(),
            reservoir: Vec::new(),
            offered: 0,
            captured: 0,
        }
    }

    /// Offer a record; returns whether any policy captured it.
    pub fn offer(&mut self, record: TraceRecord) -> bool {
        self.offered += 1;
        let mut kept = false;

        if self.every > 0 && record.ordinal % self.every == 0 {
            self.nth.push_back(record.clone());
            while self.nth.len() > self.nth_cap() {
                self.nth.pop_front();
            }
            kept = true;
        }

        if self.reservoir_cap > 0 {
            let priority = splitmix64(self.seed ^ record.ordinal);
            if self.reservoir.len() < self.reservoir_cap {
                self.reservoir.push((priority, record));
                kept = true;
            } else if let Some(worst) = self.worst_slot() {
                if priority < self.reservoir[worst].0 {
                    self.reservoir[worst] = (priority, record);
                    kept = true;
                }
            }
        }

        if kept {
            self.captured += 1;
        }
        kept
    }

    fn nth_cap(&self) -> usize {
        self.reservoir_cap.max(16)
    }

    /// Index of the largest-priority reservoir entry.
    fn worst_slot(&self) -> Option<usize> {
        self.reservoir
            .iter()
            .enumerate()
            .max_by_key(|(_, (p, _))| *p)
            .map(|(i, _)| i)
    }

    /// Records offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers at least one policy kept (counting later reservoir
    /// replacements as captures).
    pub fn captured(&self) -> u64 {
        self.captured
    }

    /// The canonical sample: stride + reservoir records merged, sorted
    /// by ordinal, deduplicated. Two same-seed runs offering the same
    /// ordinals produce byte-identical logs regardless of offer order.
    pub fn canonical_log(&self) -> Vec<TraceRecord> {
        let mut log: Vec<TraceRecord> = self
            .nth
            .iter()
            .chain(self.reservoir.iter().map(|(_, r)| r))
            .cloned()
            .collect();
        log.sort_by_key(|r| r.ordinal);
        log.dedup_by_key(|r| r.ordinal);
        log
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ordinal: u64) -> TraceRecord {
        TraceRecord {
            ordinal,
            shard: (ordinal % 4) as u32,
            generation: 1,
            queue_depth: ordinal % 7,
            batch_len: 10,
            outcome: "served".to_string(),
            fault: None,
        }
    }

    #[test]
    fn stride_keeps_every_nth_recent() {
        let mut s = TraceSampler::new(10, 0, 99);
        for o in 0..1000 {
            s.offer(record(o));
        }
        let log = s.canonical_log();
        assert!(!log.is_empty());
        assert!(log.iter().all(|r| r.ordinal % 10 == 0));
        // Bounded: only the most recent strides survive.
        assert!(log.len() <= 16);
        assert_eq!(log.last().unwrap().ordinal, 990);
    }

    #[test]
    fn reservoir_is_offer_order_independent() {
        let forward = {
            let mut s = TraceSampler::new(0, 8, 7);
            for o in 0..500 {
                s.offer(record(o));
            }
            s.canonical_log()
        };
        let backward = {
            let mut s = TraceSampler::new(0, 8, 7);
            for o in (0..500).rev() {
                s.offer(record(o));
            }
            s.canonical_log()
        };
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 8);
    }

    #[test]
    fn seed_changes_the_reservoir() {
        let pick = |seed: u64| {
            let mut s = TraceSampler::new(0, 4, seed);
            for o in 0..200 {
                s.offer(record(o));
            }
            s.canonical_log()
                .iter()
                .map(|r| r.ordinal)
                .collect::<Vec<_>>()
        };
        assert_ne!(pick(1), pick(2));
        assert_eq!(pick(3), pick(3));
    }

    #[test]
    fn canonical_log_merges_and_dedups() {
        // every=1 with a reservoir: low ordinals live in both policies.
        let mut s = TraceSampler::new(1, 4, 5);
        for o in 0..8 {
            s.offer(record(o));
        }
        let log = s.canonical_log();
        let ordinals: Vec<u64> = log.iter().map(|r| r.ordinal).collect();
        let mut dedup = ordinals.clone();
        dedup.dedup();
        assert_eq!(ordinals, dedup, "no duplicate ordinals");
        assert!(ordinals.windows(2).all(|w| w[0] < w[1]), "sorted");
        assert_eq!(s.offered(), 8);
        assert!(s.captured() >= 8, "every offer was stride-captured");
    }
}
