//! [`RunReport`]: the machine-readable snapshot of one run's metrics,
//! spans, events and phase health, plus its Markdown rendering.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram bucket with a nonzero count. `hi = None` is the open
/// overflow bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    pub lo: u64,
    pub hi: Option<u64>,
    pub count: u64,
}

/// Snapshot of one histogram: total observations, their sum, and the
/// nonzero buckets in ascending order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`0.0 ≤ q ≤ 1.0`), or `None` for an empty histogram — callers must
    /// render the empty case explicitly instead of propagating a NaN.
    /// The open overflow bucket reports its lower bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q=0 → first, q=1 → last.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.hi.unwrap_or(b.lo));
            }
        }
        self.buckets.last().map(|b| b.hi.unwrap_or(b.lo))
    }
}

/// Aggregated timings of one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    pub path: String,
    /// How many times the span ran.
    pub count: u64,
    /// Summed per-thread work time across runs, in seconds. For a parent
    /// span this is wall time; children running in parallel can sum to
    /// more than their parent's wall time.
    pub total_secs: f64,
    /// Longest single run, in seconds.
    pub max_secs: f64,
}

/// Terminal verdict of one phase, with the message that triggered a
/// degradation or failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseHealth {
    /// `"ok"`, `"degraded"` or `"failed"`.
    pub status: String,
    /// The triggering event's message; empty when ok.
    pub reason: String,
}

/// Everything the instrumentation saw, in canonical order: maps sorted by
/// name, spans by path, events by (phase, kind, time, detail). Apart from
/// span timings, every field is deterministic across thread counts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunReport {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: Vec<SpanSnapshot>,
    pub events: Vec<Event>,
    /// Total occurrence count per event kind (sums the `count` fields).
    pub event_counts: BTreeMap<String, u64>,
    pub health: BTreeMap<String, PhaseHealth>,
}

impl RunReport {
    /// Zero out the wall-clock span fields, leaving only the deterministic
    /// structure (paths and run counts). Used by tests asserting that two
    /// runs at different thread counts produced the same report.
    pub fn strip_timings(&mut self) {
        for span in &mut self.spans {
            span.total_secs = 0.0;
            span.max_secs = 0.0;
        }
    }

    /// Sum of `count` over every logged event kind.
    pub fn total_events(&self) -> u64 {
        self.event_counts.values().sum()
    }

    /// Markdown summary: phase health, spans, the registry, and the event
    /// log (kind totals plus a bounded sample of records).
    pub fn render_md(&self) -> String {
        let mut out = String::from("## Run report\n");

        if !self.health.is_empty() {
            out.push_str("\n### Phase health\n\n| phase | status | reason |\n|---|---|---|\n");
            for (phase, h) in &self.health {
                let reason = if h.reason.is_empty() {
                    "—"
                } else {
                    &h.reason
                };
                let _ = writeln!(out, "| {phase} | {} | {reason} |", h.status);
            }
        }

        if !self.spans.is_empty() {
            out.push_str(
                "\n### Phase spans\n\n| span | runs | total s | max s |\n|---|---:|---:|---:|\n",
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.3} | {:.3} |",
                    s.path, s.count, s.total_secs, s.max_secs
                );
            }
        }

        if !self.counters.is_empty() {
            out.push_str("\n### Counters\n\n| counter | value |\n|---|---:|\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "| {name} | {v} |");
            }
        }

        if !self.gauges.is_empty() {
            out.push_str("\n### Gauges\n\n| gauge | value |\n|---|---:|\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "| {name} | {v} |");
            }
        }

        if !self.histograms.is_empty() {
            out.push_str(
                "\n### Histograms\n\n| histogram | n | sum | mean | buckets (lo:count) |\n|---|---:|---:|---:|---|\n",
            );
            for (name, h) in &self.histograms {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|b| format!("{}:{}", b.lo, b.count))
                    .collect();
                let _ = writeln!(
                    out,
                    "| {name} | {} | {} | {:.1} | {} |",
                    h.count,
                    h.sum,
                    h.mean(),
                    buckets.join(" ")
                );
            }
        }

        if self.events.is_empty() {
            out.push_str("\n### Events\n\nnone — the run recorded no notable events.\n");
        } else {
            out.push_str("\n### Events\n\n| kind | records | occurrences |\n|---|---:|---:|\n");
            for (kind, total) in &self.event_counts {
                let records = self.events.iter().filter(|e| e.kind.name() == kind).count();
                let _ = writeln!(out, "| {kind} | {records} | {total} |");
            }
            const SAMPLE: usize = 20;
            out.push_str("\nSample records:\n\n");
            for e in self.events.iter().take(SAMPLE) {
                let time = e.time.map_or(String::new(), |t| format!(" @t={t}"));
                let _ = writeln!(
                    out,
                    "- `{}` {} ×{}{time} — {}",
                    e.phase,
                    e.kind.name(),
                    e.count,
                    e.detail
                );
            }
            if self.events.len() > SAMPLE {
                let _ = writeln!(out, "- … {} more records", self.events.len() - SAMPLE);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Obs};

    fn sample_report() -> RunReport {
        let obs = Obs::new();
        obs.add("crawler.pings_sent", 420);
        obs.set_gauge("atlas.knee", 17);
        obs.observe("crawler.ports_per_ip", 1);
        obs.observe("crawler.ports_per_ip", 9);
        obs.record_span("study", 1.25);
        obs.record_span("study/census", 0.25);
        obs.event("crawl[0]", EventKind::RetryFired, None, 3, "loss burst");
        obs.event(
            "blocklists",
            EventKind::FeedDayMissed,
            Some(86_400),
            2,
            "feed 4: 2 day(s) missed",
        );
        obs.set_phase_health("crawl[0]", "degraded", "survived 1 outage(s)");
        obs.set_phase_health("census", "ok", "");
        obs.report()
    }

    #[test]
    fn run_report_round_trips_through_serde_json() {
        let report = sample_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // Event kinds serialize as stable snake_case names.
        assert!(json.contains("\"retry_fired\""));
        assert!(json.contains("\"feed_day_missed\""));
    }

    #[test]
    fn strip_timings_zeroes_only_span_clocks() {
        let mut report = sample_report();
        report.strip_timings();
        assert!(report
            .spans
            .iter()
            .all(|s| s.total_secs == 0.0 && s.max_secs == 0.0));
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].count, 1);
        assert_eq!(report.counters["crawler.pings_sent"], 420);
        assert_eq!(report.total_events(), 5);
    }

    #[test]
    fn render_md_lists_every_section() {
        let md = sample_report().render_md();
        for heading in [
            "## Run report",
            "### Phase health",
            "### Phase spans",
            "### Counters",
            "### Gauges",
            "### Histograms",
            "### Events",
        ] {
            assert!(md.contains(heading), "missing {heading}");
        }
        assert!(md.contains("| crawl[0] | degraded | survived 1 outage(s) |"));
        assert!(md.contains("retry_fired"));
        // Every table row is well-formed (starts and ends with a pipe).
        for line in md.lines().filter(|l| l.starts_with('|')) {
            assert!(line.ends_with('|'), "ragged row: {line}");
        }
    }

    #[test]
    fn quantile_walks_buckets_and_refuses_empty() {
        let obs = Obs::new();
        let name = "serve.latency";
        for v in [1u64, 1, 2, 900, 1000] {
            obs.observe(name, v);
        }
        let h = &obs.report().histograms[name];
        assert_eq!(h.count, 5);
        // p50 lands in the low buckets, p99 in the ~1k bucket.
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= 4, "p50 bucket bound {p50}");
        assert!((512..=2048).contains(&p99), "p99 bucket bound {p99}");
        assert!(h.quantile(0.0).unwrap() <= p50);
        assert!(h.quantile(1.0).unwrap() >= p99);

        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), None, "empty histogram has no p50");
        assert_eq!(empty.quantile(0.99), None);
    }

    #[test]
    fn empty_report_renders_without_tables() {
        let md = RunReport::default().render_md();
        assert!(md.contains("no notable events"));
        assert!(!md.contains("### Counters"));
    }
}
