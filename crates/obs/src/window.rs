//! Windowed aggregation over a deterministic logical clock.
//!
//! The [`crate::RunReport`] registry is cumulative: it answers "what did
//! this run do" once, at exit. A live service needs the derivative —
//! shed *rate*, queries *per window*, how the batch-size distribution
//! moved — while the run is still going. [`WindowRing`] provides that: a
//! fixed-capacity ring of per-window metric deltas keyed by a **logical
//! clock** of query-ordinal ticks. Ticks are never wall time: ar-lint R2
//! forbids ambient entropy in the measurement path, and a logical clock
//! makes two same-seed runs produce byte-identical window sequences, so
//! the telemetry plane inherits the workspace's determinism contract
//! instead of fighting it.
//!
//! Windows that fall off the ring are not dropped — they fold into an
//! eviction accumulator, preserving the invariant the property tests
//! pin: *evicted + closed + open always equals the cumulative registry*,
//! at every tick, across any wraparound.

use crate::bucket_index;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Per-window delta of one log₂ histogram: observation count, sum, and
/// nonzero buckets keyed by bucket index (see [`crate::bucket_bounds`]).
/// `BTreeMap` keys keep the serde encoding canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowHistogram {
    pub count: u64,
    pub sum: u64,
    pub buckets: BTreeMap<u8, u64>,
}

impl WindowHistogram {
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        *self.buckets.entry(bucket_index(v) as u8).or_insert(0) += 1;
    }

    fn merge(&mut self, other: &WindowHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += count;
        }
    }
}

/// One window of metric deltas: everything recorded while the logical
/// clock was inside `[index * ticks_per_window, (index+1) * ticks_per_window)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Window {
    /// Window ordinal: `tick / ticks_per_window`. Indices are explicit
    /// because idle spans produce no window at all — the ring never
    /// materializes empty windows.
    pub index: u64,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, WindowHistogram>,
}

impl Window {
    fn at(index: u64) -> Window {
        Window {
            index,
            ..Window::default()
        }
    }

    /// Fold `other` into `self` (the index of `self` is kept).
    pub fn merge(&mut self, other: &Window) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// A counter's value in this window (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Fixed-capacity ring of per-window metric deltas over a logical clock.
///
/// Not thread-safe by itself — the owner wraps it in a mutex and feeds it
/// from the point where ticks are assigned, which is also what keeps the
/// tick→window mapping deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowRing {
    ticks_per_window: u64,
    capacity: usize,
    tick: u64,
    open: Window,
    /// Closed windows, oldest first; never longer than `capacity`.
    closed: VecDeque<Window>,
    /// Fold of every window pushed out of the ring; `index` is the last
    /// evicted window's.
    evicted: Window,
    /// Everything ever recorded, maintained independently so the ring's
    /// bookkeeping can be checked against it.
    cumulative: Window,
}

impl WindowRing {
    /// A ring closing a window every `ticks_per_window` ticks and
    /// retaining the most recent `capacity` closed windows (both clamped
    /// to at least 1).
    pub fn new(ticks_per_window: u64, capacity: usize) -> WindowRing {
        WindowRing {
            ticks_per_window: ticks_per_window.max(1),
            capacity: capacity.max(1),
            tick: 0,
            open: Window::at(0),
            closed: VecDeque::new(),
            evicted: Window::default(),
            cumulative: Window::default(),
        }
    }

    /// Current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    pub fn ticks_per_window(&self) -> u64 {
        self.ticks_per_window
    }

    /// Move the logical clock to `tick` (monotonic; stale values are
    /// ignored). Crossing a window boundary closes the open window and
    /// returns it — the owner uses the close as its SLO evaluation edge.
    pub fn advance(&mut self, tick: u64) -> Option<Window> {
        if tick <= self.tick {
            return None;
        }
        self.tick = tick;
        let index = tick / self.ticks_per_window;
        if index == self.open.index {
            return None;
        }
        let closed = std::mem::replace(&mut self.open, Window::at(index));
        let snapshot = closed.clone();
        self.closed.push_back(closed);
        if self.closed.len() > self.capacity {
            let oldest = self.closed.pop_front().expect("ring not empty");
            self.evicted.index = oldest.index;
            self.evicted.merge(&oldest);
        }
        Some(snapshot)
    }

    /// Bump a counter in the open window (and the cumulative fold).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.open.counters.entry(name.to_string()).or_insert(0) += v;
        *self
            .cumulative
            .counters
            .entry(name.to_string())
            .or_insert(0) += v;
    }

    /// Record a histogram observation in the open window (and the
    /// cumulative fold).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.open
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
        self.cumulative
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// The window currently accumulating.
    pub fn open(&self) -> &Window {
        &self.open
    }

    /// Retained closed windows, oldest first.
    pub fn closed(&self) -> impl Iterator<Item = &Window> {
        self.closed.iter()
    }

    /// Retained windows oldest first, the open window last.
    pub fn windows(&self) -> Vec<&Window> {
        let mut all: Vec<&Window> = self.closed.iter().collect();
        all.push(&self.open);
        all
    }

    /// Everything ever recorded through this ring.
    pub fn cumulative(&self) -> &Window {
        &self.cumulative
    }

    /// Re-fold evicted + closed + open. The property tests assert this
    /// equals [`WindowRing::cumulative`] modulo window indices at every
    /// step; production code uses `cumulative()` directly.
    pub fn refold(&self) -> Window {
        let mut total = Window::default();
        total.merge(&self.evicted);
        for w in &self.closed {
            total.merge(w);
        }
        total.merge(&self.open);
        total
    }

    /// Rolling per-tick rate of a counter over the retained closed
    /// windows (the open window is partial and excluded). 0 when no
    /// window has closed yet.
    pub fn rolling_rate(&self, name: &str) -> f64 {
        if self.closed.is_empty() {
            return 0.0;
        }
        let total: u64 = self.closed.iter().map(|w| w.counter(name)).sum();
        total as f64 / (self.closed.len() as u64 * self.ticks_per_window) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_close_on_boundary_and_keep_indices() {
        let mut ring = WindowRing::new(10, 4);
        ring.add("q", 3);
        assert_eq!(ring.advance(5), None, "still inside window 0");
        ring.add("q", 2);
        let closed = ring.advance(10).expect("boundary crossed");
        assert_eq!(closed.index, 0);
        assert_eq!(closed.counter("q"), 5);
        assert_eq!(ring.open().index, 1);
        // Idle gap: jumping far ahead opens the right window, no filler.
        ring.advance(95);
        assert_eq!(ring.open().index, 9);
        assert_eq!(ring.closed.len(), 2);
    }

    #[test]
    fn eviction_folds_instead_of_dropping() {
        let mut ring = WindowRing::new(1, 2);
        for t in 1..=10u64 {
            ring.add("q", 1);
            ring.observe("batch", t);
            ring.advance(t);
        }
        assert!(ring.closed.len() <= 2);
        let refold = ring.refold();
        assert_eq!(refold.counters, ring.cumulative().counters);
        assert_eq!(refold.histograms, ring.cumulative().histograms);
        assert_eq!(ring.cumulative().counter("q"), 10);
        assert_eq!(ring.cumulative().histograms["batch"].count, 10);
    }

    #[test]
    fn stale_and_same_window_advances_are_noops() {
        let mut ring = WindowRing::new(10, 2);
        ring.advance(25);
        assert_eq!(ring.tick(), 25);
        assert_eq!(ring.advance(25), None);
        assert_eq!(ring.advance(3), None, "clock never goes backwards");
        assert_eq!(ring.tick(), 25);
    }

    #[test]
    fn rolling_rate_is_per_tick_over_closed_windows() {
        let mut ring = WindowRing::new(10, 8);
        for t in 1..=30u64 {
            ring.add("q", 2);
            ring.advance(t);
        }
        // 3 closed windows × 10 ticks, 2 per tick.
        assert_eq!(ring.closed.len(), 3);
        assert!((ring.rolling_rate("q") - 2.0).abs() < 1e-9);
        assert_eq!(ring.rolling_rate("missing"), 0.0);
    }
}
