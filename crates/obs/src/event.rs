//! The event taxonomy: discrete, notable things a run did that a terminal
//! per-phase verdict would hide.

use serde::{Deserialize, Serialize};

/// What happened. The set is closed on purpose — dashboards and tests match
/// on it — and each variant has a stable snake_case wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A bt_ping verification send was retried under the retry policy.
    RetryFired,
    /// A crawler checkpoint was written at a scheduled crash.
    CheckpointWritten,
    /// The crawler resumed from a checkpoint after an outage's downtime.
    CheckpointResumed,
    /// A daily feed snapshot never arrived (count = days).
    FeedDayMissed,
    /// Listing reconstruction interpolated across missed snapshot days
    /// (count = bridged days).
    FeedDayBridged,
    /// A feed snapshot arrived truncated or corrupt.
    FeedSnapshotDamaged,
    /// Connection-log entries were censored by a scheduled Atlas gap.
    AtlasGapCensored,
    /// An AS-level blackout window opened.
    AsBlackoutEntered,
    /// An AS-level blackout window closed.
    AsBlackoutExited,
    /// A phase completed but the panic guard or fault accounting marked it
    /// degraded; the detail carries the triggering message.
    PhaseDegraded,
    /// A phase panicked and was replaced by its empty fallback.
    PhaseFailed,
    /// `ar-lint` flagged a non-allowlisted invariant violation; the detail
    /// carries the rendered finding (path, rule, symbol, message).
    LintFinding,
    /// A reputation query (or batch) was answered by `ar-serve`; the
    /// count aggregates the queries served.
    QueryServed,
    /// A new reputation snapshot was installed atomically; the detail
    /// carries the old and new generation numbers.
    SnapshotSwapped,
    /// An `ar-serve` wire frame failed to decode and was refused without
    /// tearing the server down.
    FrameRejected,
    /// One `ar-serve` shard worker came up and began accepting work.
    ShardStarted,
    /// An `ar-serve` shard worker panicked; the supervisor caught it and
    /// the connection it was servicing was dropped.
    WorkerPanicked,
    /// The shard supervisor restarted a panicked worker; the shard is
    /// accepting work again.
    WorkerRestarted,
    /// A snapshot offered for hot swap failed validation (checksum,
    /// structure, or generation monotonicity) and was refused; the server
    /// keeps serving the pinned last-good generation.
    SnapshotRejected,
    /// The serve health state machine transitioned; the detail carries
    /// `old -> new` and the triggering reason.
    HealthChanged,
    /// An SLO error budget was exhausted inside a telemetry window; the
    /// detail carries the objective and the measured burn.
    SloBreach,
    /// A previously breached SLO came back inside budget.
    SloRecovered,
    /// An `OP_STATS` probe was answered with a live telemetry frame.
    StatsServed,
    /// The deterministic trace sampler captured a query's
    /// admission→shard→verdict path; the count aggregates samples.
    TraceSampled,
}

impl EventKind {
    /// Stable snake_case name (matches the serde wire form).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RetryFired => "retry_fired",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::CheckpointResumed => "checkpoint_resumed",
            EventKind::FeedDayMissed => "feed_day_missed",
            EventKind::FeedDayBridged => "feed_day_bridged",
            EventKind::FeedSnapshotDamaged => "feed_snapshot_damaged",
            EventKind::AtlasGapCensored => "atlas_gap_censored",
            EventKind::AsBlackoutEntered => "as_blackout_entered",
            EventKind::AsBlackoutExited => "as_blackout_exited",
            EventKind::PhaseDegraded => "phase_degraded",
            EventKind::PhaseFailed => "phase_failed",
            EventKind::LintFinding => "lint_finding",
            EventKind::QueryServed => "query_served",
            EventKind::SnapshotSwapped => "snapshot_swapped",
            EventKind::FrameRejected => "frame_rejected",
            EventKind::ShardStarted => "shard_started",
            EventKind::WorkerPanicked => "worker_panicked",
            EventKind::WorkerRestarted => "worker_restarted",
            EventKind::SnapshotRejected => "snapshot_rejected",
            EventKind::HealthChanged => "health_changed",
            EventKind::SloBreach => "slo_breach",
            EventKind::SloRecovered => "slo_recovered",
            EventKind::StatsServed => "stats_served",
            EventKind::TraceSampled => "trace_sampled",
        }
    }
}

/// One aggregated event record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Phase that emitted it (`blocklists`, `crawl[0]`, `atlas`, …).
    pub phase: String,
    pub kind: EventKind,
    /// Sim-time seconds when the event is tied to a simulated moment
    /// (blackout windows, crashes); `None` for aggregate records.
    pub time: Option<u64>,
    /// How many occurrences this record aggregates (≥ 1).
    pub count: u64,
    /// Human-readable specifics; stable wording, no wall-clock content.
    pub detail: String,
}
