//! ICMP responsiveness model.
//!
//! Determines whether an ECHO REQUEST to an address at a virtual time gets
//! a reply, including the confounders the paper levels at the census
//! methodology (§2): "An ICMP reply from an IP address need not uniquely
//! identify the host using the IP address since firewalls and middleboxes
//! can reply on behalf of hosts. Further, some networks filter outgoing
//! ICMP traffic, potentially leading to undercounting."

use ar_simnet::hosts::Attachment;
use ar_simnet::time::SimTime;
use ar_simnet::universe::{AddressPolicy, Universe};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Pure-function responsiveness oracle over a universe.
pub struct Responder<'u> {
    universe: &'u Universe,
    /// Static hosts by address (occupancy + behaviour lookups).
    static_hosts: BTreeMap<Ipv4Addr, ar_simnet::hosts::HostId>,
    seed: u64,
}

impl<'u> Responder<'u> {
    pub fn new(universe: &'u Universe) -> Self {
        let static_hosts = universe
            .hosts
            .iter()
            .filter_map(|h| match h.attachment {
                Attachment::Static { ip } => Some((ip, h.id)),
                _ => None,
            })
            .collect();
        Responder {
            universe,
            static_hosts,
            seed: universe.seed.fork("census-responder").0,
        }
    }

    fn coin(&self, ip: Ipv4Addr, label: u64) -> f64 {
        let mut x = self.seed ^ (u64::from(u32::from(ip)) << 20) ^ label;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does a ping to `ip` at `t` get an echo reply?
    pub fn responds(&self, ip: Ipv4Addr, t: SimTime) -> bool {
        // Edge filtering kills everything (undercount confounder).
        if let Some(asn) = self.universe.asn_of(ip) {
            if self.universe.icmp_filtered_ases.contains(&asn) {
                return false;
            }
        } else {
            return false; // unannounced space
        }

        match self.universe.policy_of(ip) {
            Some(AddressPolicy::Static) => {
                let Some(&host_id) = self.static_hosts.get(&ip) else {
                    return false; // unoccupied static address
                };
                let host = self.universe.host(host_id);
                if host.behavior.middlebox {
                    // The middlebox answers even when the host is down
                    // (overcount confounder: the block looks always-up).
                    return true;
                }
                // Host answers when powered on; statically addressed
                // machines hold power state for days at a time (a desktop
                // that flapped every few hours would be indistinguishable
                // from pool churn in any census).
                let epoch = t.as_secs() / (48 * 3600);
                self.coin(ip, 0xA000_0000 ^ epoch) < host.behavior.online_fraction
            }
            Some(AddressPolicy::NatBlock) => {
                // The gateway device itself answers pings ~always — NAT
                // blocks look rock-stable to a census.
                self.universe.nat_at(ip).is_some()
            }
            Some(AddressPolicy::DynamicPool(pool_id)) => {
                // Occupied-by-someone with the pool's occupancy, flipping
                // per lease epoch: this is the churn signature the census
                // methodology keys on.
                let pool = self.universe.pool(pool_id);
                let epoch = t.as_secs() / pool.mean_hold.as_secs().max(900);
                self.coin(ip, 0xD000_0000 ^ epoch) < self.universe.config.dynamic_occupancy * 0.85
            }
            Some(AddressPolicy::Unused) | None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::{SimDuration, PERIOD_2};

    fn universe() -> Universe {
        Universe::generate(Seed(301), &UniverseConfig::tiny())
    }

    #[test]
    fn unannounced_space_is_silent() {
        let u = universe();
        let r = Responder::new(&u);
        assert!(!r.responds("250.9.9.9".parse().unwrap(), PERIOD_2.start));
    }

    #[test]
    fn filtered_ases_are_silent() {
        let u = universe();
        let r = Responder::new(&u);
        let filtered: Vec<_> = u
            .prefixes
            .iter()
            .filter(|p| u.icmp_filtered_ases.contains(&p.asn))
            .take(5)
            .collect();
        assert!(!filtered.is_empty());
        for rec in filtered {
            for octet in [1u8, 50, 200] {
                assert!(!r.responds(rec.prefix.host(octet), PERIOD_2.start));
            }
        }
    }

    #[test]
    fn nat_gateways_always_respond() {
        let u = universe();
        let r = Responder::new(&u);
        let mut checked = 0;
        for g in &u.nat_gateways {
            if u.icmp_filtered_ases.contains(&g.asn) {
                continue;
            }
            let mut t = PERIOD_2.start;
            while t < PERIOD_2.start + SimDuration::from_days(3) {
                assert!(r.responds(g.ip, t), "{} silent at {t}", g.ip);
                t += SimDuration::from_hours(7);
            }
            checked += 1;
            if checked > 10 {
                break;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn dynamic_addresses_flap() {
        let u = universe();
        let r = Responder::new(&u);
        let pool = u
            .pools
            .iter()
            .find(|p| p.fast && !u.icmp_filtered_ases.contains(&p.asn))
            .expect("tiny universe has unfiltered fast pools");
        let ip = pool.range.first;
        let mut states = Vec::new();
        let mut t = PERIOD_2.start;
        while t < PERIOD_2.end {
            states.push(r.responds(ip, t));
            t += SimDuration::from_hours(6);
        }
        let flips = states.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips > 3, "dynamic address should flap: {flips} flips");
    }

    #[test]
    fn responder_is_deterministic() {
        let u = universe();
        let r1 = Responder::new(&u);
        let r2 = Responder::new(&u);
        let ip = u.prefixes[0].prefix.host(10);
        for h in 0..50u64 {
            let t = PERIOD_2.start + SimDuration::from_hours(h);
            assert_eq!(r1.responds(ip, t), r2.responds(ip, t));
        }
    }
}
