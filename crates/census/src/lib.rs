//! # ar-census — the ICMP-census baseline (Cai et al.)
//!
//! The paper's §5 compares its RIPE-based dynamic detection against the
//! only reproducible alternative, Cai & Heidemann's ICMP census (SIGCOMM
//! 2010, datasets IT86c/IT89w). This crate rebuilds that methodology:
//! periodic ICMP ECHO probing of sampled addresses, availability /
//! volatility / median-uptime block metrics, and an ad-hoc dynamic-block
//! classifier — together with the confounders the paper calls out
//! (middlebox replies, ICMP-filtering networks).
//!
//! ```
//! use ar_census::{run_census, Classifier, SurveyConfig};
//! use ar_simnet::{Seed, Universe, UniverseConfig, PERIOD_2};
//!
//! let universe = Universe::generate(Seed(5), &UniverseConfig::tiny());
//! let report = run_census(
//!     &universe,
//!     &SurveyConfig::two_weeks_from(PERIOD_2.start),
//!     &Classifier::default(),
//! );
//! assert!(report.pings_sent > 0);
//! ```

pub mod responder;
pub mod survey;

pub use responder::Responder;
pub use survey::{
    run_census, run_census_with_faults, BlockMetrics, CensusReport, Classifier, SurveyConfig,
};
