//! The ICMP census: probing schedule, block metrics, and the dynamic-block
//! classifier (Cai & Heidemann, SIGCOMM 2010 — the paper's §5 baseline).
//!
//! Cai et al. "present an ongoing survey by sending ICMP ECHO messages to
//! 1% of the IPv4 address space. Based on the responses, they define
//! metrics on availability, volatility, and median up-time to determine
//! address blocks that are potentially dynamically allocated." The paper
//! deliberately cannot vouch for the classifier's accuracy; neither do we —
//! it exists so Figure 6's comparison line can be regenerated, confounders
//! included.

use crate::responder::Responder;
use ar_simnet::ip::Prefix24;
use ar_simnet::time::{SimDuration, SimTime, TimeWindow};
use ar_simnet::universe::Universe;
use rand::Rng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Survey parameters.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Window the survey runs over (Cai et al. run ~2-week surveys).
    pub window: TimeWindow,
    /// Fraction of each /24's addresses that get probed (their 1% global
    /// sample, applied per block so every block has signal).
    pub sample_per_block: usize,
    /// Interval between probes of the same address (theirs: 11 minutes;
    /// coarsened to keep the simulation cheap — the metrics are
    /// interval-relative).
    pub probe_interval: SimDuration,
    /// Fraction of announced /24s the survey covers. Cai et al. probe ~1%
    /// of the IPv4 space; relative to this workspace's already-downscaled
    /// universes a 20% block sample reproduces the paper's observation
    /// that their technique finds "roughly the same" number of listings
    /// as the RIPE pipeline (§5).
    pub block_coverage: f64,
}

impl SurveyConfig {
    pub fn two_weeks_from(start: SimTime) -> Self {
        SurveyConfig {
            window: TimeWindow::new(start, start + SimDuration::from_days(14)),
            sample_per_block: 4,
            probe_interval: SimDuration::from_hours(2),
            block_coverage: 0.2,
        }
    }
}

/// Availability / volatility / median-uptime metrics of one /24.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BlockMetrics {
    /// Fraction of probes answered (their A).
    pub availability: f64,
    /// State flips per probe opportunity (their volatility proxy).
    pub volatility: f64,
    /// Median streak of consecutive "up" observations, as a fraction of the
    /// survey length (their median up-time, normalised).
    pub median_uptime: f64,
    /// Probes sent into the block.
    pub probes: u32,
    /// Replies received.
    pub replies: u32,
}

/// Classifier thresholds. Deliberately ad-hoc (the paper's point).
#[derive(Debug, Clone)]
pub struct Classifier {
    /// Blocks must answer at least this often to be classifiable at all.
    pub min_availability: f64,
    /// ... but near-perfect availability means static/server space.
    pub max_availability: f64,
    /// Dynamic space shows short continuous up-times.
    pub max_median_uptime: f64,
    /// ... and frequent state flips.
    pub min_volatility: f64,
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier {
            min_availability: 0.05,
            max_availability: 0.95,
            max_median_uptime: 0.30,
            min_volatility: 0.03,
        }
    }
}

impl Classifier {
    pub fn is_dynamic(&self, m: &BlockMetrics) -> bool {
        m.availability > self.min_availability
            && m.availability < self.max_availability
            && m.median_uptime <= self.max_median_uptime
            && m.volatility >= self.min_volatility
    }
}

/// Census output.
#[derive(Debug, Clone, Serialize)]
pub struct CensusReport {
    pub blocks: BTreeMap<Prefix24, BlockMetrics>,
    pub dynamic_blocks: Vec<Prefix24>,
    pub pings_sent: u64,
    pub replies: u64,
    /// Probes that would have been answered but fell inside an injected
    /// AS blackout window (0 without fault injection).
    pub blackout_suppressed: u64,
}

impl CensusReport {
    /// Publish the census probe volume and classification under
    /// `census.*`, with a replies-per-block histogram.
    pub fn record_obs(&self, obs: &ar_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        obs.add("census.blocks_surveyed", self.blocks.len() as u64);
        obs.add("census.dynamic_blocks", self.dynamic_blocks.len() as u64);
        obs.add("census.pings_sent", self.pings_sent);
        obs.add("census.replies", self.replies);
        obs.add("census.blackout_suppressed", self.blackout_suppressed);
        let h = obs.histogram("census.replies_per_block");
        for m in self.blocks.values() {
            h.observe(u64::from(m.replies));
        }
    }

    pub fn covers(&self, ip: Ipv4Addr) -> bool {
        self.dynamic_blocks.binary_search(&Prefix24::of(ip)).is_ok()
    }
}

/// Run the census over every announced /24 of the universe.
pub fn run_census(
    universe: &Universe,
    config: &SurveyConfig,
    classifier: &Classifier,
) -> CensusReport {
    run_census_with_faults(universe, config, classifier, None)
}

/// Census with optional fault injection: probes into an AS whose network is
/// blacked out go unanswered, exactly as a real survey would experience a
/// regional outage. With `None` (or a plan without network faults) this is
/// byte-identical to [`run_census`] — the blackout gate is only consulted
/// when the plan actually schedules blackouts, and fault lookups never touch
/// the sampling RNG.
pub fn run_census_with_faults(
    universe: &Universe,
    config: &SurveyConfig,
    classifier: &Classifier,
    faults: Option<&ar_faults::FaultPlan>,
) -> CensusReport {
    let blackouts = faults.filter(|p| !p.blackouts.is_empty());
    let responder = Responder::new(universe);
    let mut rng = universe.seed.fork("census-sample").rng();
    let mut blocks = BTreeMap::new();
    let mut pings_sent = 0u64;
    let mut replies_total = 0u64;
    let mut blackout_suppressed = 0u64;

    for rec in &universe.prefixes {
        // Block sampling: the survey only covers a fraction of the space.
        if !rng.gen_bool(config.block_coverage.clamp(0.0, 1.0)) {
            continue;
        }
        // Sample addresses of the block (deterministic per universe).
        let mut sample: Vec<Ipv4Addr> = Vec::with_capacity(config.sample_per_block);
        while sample.len() < config.sample_per_block {
            let ip = rec.prefix.host(rng.gen_range(1..255u16) as u8);
            if !sample.contains(&ip) {
                sample.push(ip);
            }
        }

        let mut probes = 0u32;
        let mut replies = 0u32;
        let mut flips = 0u32;
        let mut streaks: Vec<u32> = Vec::new();
        for ip in &sample {
            let mut t = config.window.start;
            let mut prev: Option<bool> = None;
            let mut streak = 0u32;
            while t < config.window.end {
                let mut up = responder.responds(*ip, t);
                if up {
                    if let Some(plan) = blackouts {
                        if plan.blackout_at(Some(rec.asn), t) {
                            up = false;
                            blackout_suppressed += 1;
                        }
                    }
                }
                probes += 1;
                if up {
                    replies += 1;
                    streak += 1;
                }
                if let Some(p) = prev {
                    if p != up {
                        flips += 1;
                        if p {
                            streaks.push(streak - u32::from(up));
                            streak = u32::from(up);
                        }
                    }
                }
                prev = Some(up);
                t += config.probe_interval;
            }
            if streak > 0 {
                streaks.push(streak);
            }
        }
        pings_sent += u64::from(probes);
        replies_total += u64::from(replies);

        let probes_per_addr =
            (config.window.duration().as_secs() / config.probe_interval.as_secs()).max(1) as f64;
        streaks.sort_unstable();
        let median_streak = if streaks.is_empty() {
            0.0
        } else {
            f64::from(streaks[streaks.len() / 2])
        };
        blocks.insert(
            rec.prefix,
            BlockMetrics {
                availability: f64::from(replies) / f64::from(probes.max(1)),
                volatility: f64::from(flips) / f64::from(probes.max(1)),
                median_uptime: median_streak / probes_per_addr,
                probes,
                replies,
            },
        );
    }

    let dynamic_blocks: Vec<Prefix24> = blocks
        .iter()
        .filter(|(_, m)| classifier.is_dynamic(m))
        .map(|(p, _)| *p)
        .collect();

    CensusReport {
        blocks,
        dynamic_blocks,
        pings_sent,
        replies: replies_total,
        blackout_suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ar_simnet::config::UniverseConfig;
    use ar_simnet::rng::Seed;
    use ar_simnet::time::PERIOD_2;
    use ar_simnet::universe::AddressPolicy;

    fn census(seed: u64) -> (Universe, CensusReport) {
        let u = Universe::generate(Seed(seed), &UniverseConfig::tiny());
        let report = run_census(
            &u,
            &SurveyConfig::two_weeks_from(PERIOD_2.start),
            &Classifier::default(),
        );
        (u, report)
    }

    #[test]
    fn census_covers_the_configured_block_fraction() {
        let (u, r) = census(311);
        let share = r.blocks.len() as f64 / u.prefixes.len() as f64;
        assert!((share - 0.2).abs() < 0.12, "coverage {share:.2}");
        assert!(r.pings_sent > 0);
        assert!(r.replies > 0 && r.replies < r.pings_sent);
    }

    #[test]
    fn full_coverage_probes_every_block() {
        let u = Universe::generate(Seed(311), &UniverseConfig::tiny());
        let mut cfg = SurveyConfig::two_weeks_from(PERIOD_2.start);
        cfg.block_coverage = 1.0;
        let r = run_census(&u, &cfg, &Classifier::default());
        assert_eq!(r.blocks.len(), u.prefixes.len());
    }

    #[test]
    fn dynamic_recall_is_substantial() {
        // Full coverage: this test is about the classifier, not sampling.
        let u = Universe::generate(Seed(312), &UniverseConfig::tiny());
        let mut cfg = SurveyConfig::two_weeks_from(PERIOD_2.start);
        cfg.block_coverage = 1.0;
        let r = run_census(&u, &cfg, &Classifier::default());
        let truth = u.true_dynamic_prefixes(true);
        let unfiltered: Vec<_> = truth
            .iter()
            .filter(|p| {
                u.prefix_record(**p)
                    .is_some_and(|rec| !u.icmp_filtered_ases.contains(&rec.asn))
            })
            .collect();
        assert!(!unfiltered.is_empty());
        let hits = unfiltered
            .iter()
            .filter(|p| r.dynamic_blocks.binary_search(p).is_ok())
            .count();
        assert!(
            hits * 2 >= unfiltered.len(),
            "census should find most unfiltered fast pools: {hits}/{}",
            unfiltered.len()
        );
    }

    #[test]
    fn census_disagrees_with_ground_truth() {
        // The whole point of the baseline: its accuracy "cannot be
        // established" (§2). It must disagree with ground truth somewhere —
        // over-reporting non-pool blocks, or missing real fast pools
        // (ICMP filtering alone guarantees misses).
        // A `small` universe guarantees fast pools inside ICMP-filtered
        // ASes exist (tiny ones may have none).
        let u = Universe::generate(Seed(313), &UniverseConfig::small());
        let mut cfg = SurveyConfig::two_weeks_from(PERIOD_2.start);
        cfg.block_coverage = 1.0;
        let r = run_census(&u, &cfg, &Classifier::default());
        let truth = u.true_dynamic_prefixes(true);
        let false_pos = r
            .dynamic_blocks
            .iter()
            .filter(|p| !truth.contains(p))
            .count();
        let missed = truth
            .iter()
            .filter(|p| r.dynamic_blocks.binary_search(p).is_err())
            .count();
        assert!(
            false_pos + missed > 0,
            "classifier exactly matched ground truth — the confounders are not biting"
        );
        // ICMP-filtered fast pools are necessarily missed.
        let filtered_missed = truth
            .iter()
            .filter(|p| {
                u.prefix_record(**p)
                    .is_some_and(|rec| u.icmp_filtered_ases.contains(&rec.asn))
            })
            .filter(|p| r.dynamic_blocks.binary_search(p).is_err())
            .count();
        assert!(filtered_missed > 0, "filtering should hide some pools");
    }

    #[test]
    fn filtered_ases_are_undetectable() {
        let (u, r) = census(314);
        for p in &r.dynamic_blocks {
            let rec = u.prefix_record(*p).expect("announced");
            assert!(
                !u.icmp_filtered_ases.contains(&rec.asn),
                "{p} is in an ICMP-filtered AS yet was classified"
            );
        }
    }

    #[test]
    fn nat_blocks_look_static() {
        let (u, r) = census(315);
        let mut nat_dynamic = 0;
        let mut nat_total = 0;
        for rec in &u.prefixes {
            if matches!(rec.policy, AddressPolicy::NatBlock)
                && !u.icmp_filtered_ases.contains(&rec.asn)
            {
                nat_total += 1;
                if r.dynamic_blocks.binary_search(&rec.prefix).is_ok() {
                    nat_dynamic += 1;
                }
            }
        }
        assert!(nat_total > 0);
        assert!(
            nat_dynamic * 5 <= nat_total,
            "NAT blocks should rarely look dynamic: {nat_dynamic}/{nat_total}"
        );
    }

    #[test]
    fn blackouts_suppress_census_replies() {
        use ar_faults::{Blackout, FaultConfig, FaultPlan};
        use ar_simnet::rng::Seed;

        let u = Universe::generate(Seed(317), &UniverseConfig::tiny());
        let mut cfg = SurveyConfig::two_weeks_from(PERIOD_2.start);
        cfg.block_coverage = 1.0;
        let clean = run_census_with_faults(&u, &cfg, &Classifier::default(), None);

        // Zero plan: byte-identical to the unfaulted run.
        let zero = FaultPlan::zero(Seed(1));
        let same = run_census_with_faults(&u, &cfg, &Classifier::default(), Some(&zero));
        assert_eq!(same.pings_sent, clean.pings_sent);
        assert_eq!(same.replies, clean.replies);
        assert_eq!(same.dynamic_blocks, clean.dynamic_blocks);
        assert_eq!(same.blackout_suppressed, 0);

        // Black out every announced AS for the whole survey window: every
        // would-be reply is suppressed.
        let mut plan = FaultPlan::zero(Seed(2));
        plan.config = FaultConfig::at_intensity(1.0);
        let mut asns: Vec<_> = u.prefixes.iter().map(|r| r.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        for asn in asns {
            plan.blackouts.push(Blackout {
                asn,
                window: cfg.window,
            });
        }
        plan.rebuild_indexes();
        let dark = run_census_with_faults(&u, &cfg, &Classifier::default(), Some(&plan));
        assert_eq!(
            dark.pings_sent, clean.pings_sent,
            "probing schedule unchanged"
        );
        assert_eq!(dark.replies, 0, "a total blackout answers nothing");
        assert_eq!(dark.blackout_suppressed, clean.replies);
        assert!(dark.dynamic_blocks.is_empty());
    }

    #[test]
    fn report_covers_lookup() {
        let (_u, r) = census(316);
        if let Some(p) = r.dynamic_blocks.first() {
            assert!(r.covers(p.host(7)));
        }
        assert!(!r.covers("250.0.0.1".parse().unwrap()));
    }
}
