//! Property tests for the census block metrics and classifier.

use ar_census::{BlockMetrics, Classifier};
use proptest::prelude::*;

fn arb_metrics() -> impl Strategy<Value = BlockMetrics> {
    (0u32..2000, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(probes, avail, vol)| {
        let replies = (f64::from(probes) * avail) as u32;
        BlockMetrics {
            availability: avail,
            volatility: vol.min(1.0),
            median_uptime: (avail * 0.9).min(1.0),
            probes,
            replies,
        }
    })
}

proptest! {
    /// The classifier is monotone in its thresholds: loosening every
    /// threshold can only keep or add classifications.
    #[test]
    fn classifier_monotone(m in arb_metrics()) {
        let strict = Classifier {
            min_availability: 0.10,
            max_availability: 0.90,
            max_median_uptime: 0.25,
            min_volatility: 0.05,
        };
        let loose = Classifier {
            min_availability: 0.05,
            max_availability: 0.95,
            max_median_uptime: 0.40,
            min_volatility: 0.01,
        };
        if strict.is_dynamic(&m) {
            prop_assert!(loose.is_dynamic(&m), "loose classifier must contain strict");
        }
    }

    /// Degenerate blocks are never classified: fully silent or fully
    /// saturated space cannot look dynamic.
    #[test]
    fn degenerate_blocks_excluded(vol in 0.0f64..=1.0, uptime in 0.0f64..=1.0) {
        let silent = BlockMetrics {
            availability: 0.0,
            volatility: vol,
            median_uptime: uptime,
            probes: 100,
            replies: 0,
        };
        let saturated = BlockMetrics {
            availability: 1.0,
            volatility: vol,
            median_uptime: uptime,
            probes: 100,
            replies: 100,
        };
        let c = Classifier::default();
        prop_assert!(!c.is_dynamic(&silent));
        prop_assert!(!c.is_dynamic(&saturated));
    }
}
