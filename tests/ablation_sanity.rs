//! Sanity relations between pipeline variants — the invariants the
//! ablation experiments rely on.

use ar_atlas::{detect_dynamic, generate_fleet, ConnectionLog, DynamicDetection, PipelineConfig};
use ar_crawler::{crawl, CrawlConfig};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::{date, SimDuration, TimeWindow, ATLAS_WINDOW};
use ar_simnet::{Seed, Universe, UniverseConfig};
use std::collections::HashSet;

fn atlas_fixture() -> (Universe, ConnectionLog) {
    let universe = Universe::generate(Seed(808), &UniverseConfig::small());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (_probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);
    (universe, log)
}

fn run(universe: &Universe, log: &ConnectionLog, config: PipelineConfig) -> DynamicDetection {
    detect_dynamic(log, &config, |ip| universe.asn_of(ip))
}

#[test]
fn lower_knee_detects_a_superset() {
    let (universe, log) = atlas_fixture();
    let low = run(
        &universe,
        &log,
        PipelineConfig {
            knee_override: Some(2),
            ..PipelineConfig::default()
        },
    );
    let high = run(
        &universe,
        &log,
        PipelineConfig {
            knee_override: Some(16),
            ..PipelineConfig::default()
        },
    );
    assert!(high.dynamic_prefixes.is_subset(&low.dynamic_prefixes));
    assert!(low.daily.probes.len() >= high.daily.probes.len());
}

#[test]
fn removing_daily_filter_detects_a_superset() {
    let (universe, log) = atlas_fixture();
    let with = run(&universe, &log, PipelineConfig::default());
    let without = run(
        &universe,
        &log,
        PipelineConfig {
            max_mean_interchange: None,
            ..PipelineConfig::default()
        },
    );
    assert!(with.dynamic_prefixes.is_subset(&without.dynamic_prefixes));
    // And the filter is doing real work: the superset is strict.
    assert!(without.dynamic_prefixes.len() > with.dynamic_prefixes.len());
    // The filter buys fast-pool purity: the filtered set's share of ≤1-day
    // pools is at least as high as the unfiltered set's.
    let fast = universe.true_dynamic_prefixes(true);
    let purity = |d: &DynamicDetection| {
        d.dynamic_prefixes
            .iter()
            .filter(|p| fast.contains(p))
            .count() as f64
            / d.dynamic_prefixes.len().max(1) as f64
    };
    assert!(
        purity(&with) >= purity(&without),
        "daily filter should not reduce fast purity: {:.2} vs {:.2}",
        purity(&with),
        purity(&without)
    );
}

#[test]
fn prefix_expansion_only_adds_addresses() {
    let (universe, log) = atlas_fixture();
    let expanded = run(&universe, &log, PipelineConfig::default());
    let exact = run(
        &universe,
        &log,
        PipelineConfig {
            expand_to_prefix: false,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(expanded.dynamic_addresses, exact.dynamic_addresses);
    for ip in &exact.dynamic_addresses {
        assert!(expanded.covers(*ip), "expansion dropped {ip}");
    }
    assert!(exact.dynamic_prefixes.is_empty());
}

#[test]
fn more_vantage_points_never_reduce_discovery() {
    // Vantage effects only show while discovery is probe-rate bound: the
    // population must exceed what one vantage can sweep in the window. A
    // tiny universe saturates within a single crawl hour at any rate, so
    // this test runs one hour of a `small` universe at 1 msg/s.
    let universe = Universe::generate(Seed(811), &UniverseConfig::small());
    let week = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10));
    let window = TimeWindow::new(week.start, week.start + SimDuration::from_hours(1));
    let alloc = AllocationPlan::build(&universe, week, InterestSet::Observable);

    let run = |vantages: u32| {
        let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
        let mut config = CrawlConfig::new(window);
        config.rate_per_sec = 1;
        config.vantage_points = vantages;
        crawl(&mut net, &config).stats
    };
    let one = run(1);
    let four = run(4);
    // Sightings (unique_ips) saturate quickly — every reply advertises 8
    // peers — so the rate-bound quantities are what scale: probes sent and
    // verification candidates surfaced.
    // Scaling is sub-linear: the 20-minute per-IP politeness window is
    // global across vantages (the whole point of spreading probes), so
    // extra budget increasingly hits cooling IPs.
    assert!(
        four.get_nodes_sent as f64 >= one.get_nodes_sent as f64 * 1.3,
        "sends should scale with vantages: {} vs {}",
        four.get_nodes_sent,
        one.get_nodes_sent
    );
    assert!(
        four.multiport_ips > one.multiport_ips,
        "multiport candidates: {} vs {}",
        four.multiport_ips,
        one.multiport_ips
    );
    assert!(four.unique_ips >= one.unique_ips);
}

#[test]
fn disabling_ping_verification_kills_verdicts_but_keeps_discovery() {
    let universe = Universe::generate(Seed(809), &UniverseConfig::tiny());
    let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 8));
    let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);

    let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
    let verified = crawl(&mut net, &CrawlConfig::new(window));

    let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
    let mut config = CrawlConfig::new(window);
    config.disable_ping_verification = true;
    let unverified = crawl(&mut net, &config);

    assert_eq!(unverified.stats.natted_ips, 0, "no verdicts without pings");
    assert_eq!(unverified.stats.pings_sent, 0);
    assert!(unverified.stats.unique_ips > 0);
    // Discovery-only candidates still exist and over-approximate.
    let candidates: HashSet<_> = unverified.discovery_only_nat_candidates().collect();
    let verdicts: HashSet<_> = verified.natted_ips().collect();
    assert!(!candidates.is_empty());
    // The verified set is (essentially) contained in candidates computed on
    // the *same* crawl; across independent crawls allow small slack from
    // sampling differences.
    let missing = verdicts.difference(&candidates).count();
    assert!(
        missing * 10 <= verdicts.len().max(1),
        "{missing}/{} verdicts not even candidates",
        verdicts.len()
    );
    let _ = SimDuration::from_days(1);
}
