//! Whole-campaign integration tests: run the full study and check the
//! paper's qualitative results plus ground-truth soundness in one place.

use address_reuse::{
    coverage, durations, funnel, impact, natted_per_list, reused_address_list, ReuseEvidence,
    Study, StudyConfig,
};
use ar_simnet::Seed;
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    // `shape_test`: a small (not tiny) universe so the blocklisted∩reused
    // joins are large enough for the distribution-shape assertions below.
    STUDY.get_or_init(|| Study::run(StudyConfig::shape_test(Seed(777))))
}

#[test]
fn funnels_narrow_monotonically() {
    let f = funnel(study());
    assert!(f.is_monotone(), "{f:?}");
    assert!(f.natted_blocklisted > 0, "NAT∩blocklist join populated");
    assert!(f.blocklisted_daily > 0, "dynamic∩blocklist join populated");
}

#[test]
fn both_detectors_are_sound_against_ground_truth() {
    let s = study();
    // §3.1: every NAT verdict is a real multi-user gateway.
    for ip in s.natted_ips() {
        assert!(s.universe.is_truly_natted(ip), "false NAT verdict {ip}");
    }
    // §3.2: every dynamic prefix is real pool space.
    let truth = s.universe.true_dynamic_prefixes(false);
    for p in &s.atlas.dynamic_prefixes {
        assert!(truth.contains(p), "false dynamic prefix {p}");
    }
}

#[test]
fn both_detectors_are_lower_bounds() {
    let s = study();
    // NAT user counts never exceed reality.
    for ip in s.natted_ips() {
        let bound = s.nat_user_bound(ip).expect("verdict carries bound");
        let truth = s.universe.true_nat_user_count(ip).expect("real NAT") as u32;
        assert!(bound <= truth, "{ip}: bound {bound} > truth {truth}");
    }
    // Detected dynamic space never exceeds real pool space (tiny test
    // universes have probes in most pools, so the strict undershoot the
    // paper reports only appears at experiment scale — see fig4).
    let any = s.universe.true_dynamic_prefixes(false);
    assert!(s.atlas.dynamic_prefixes.len() <= any.len());
    assert!(s.atlas.dynamic_prefixes.iter().all(|p| any.contains(p)));
}

#[test]
fn figure7_ordering_dynamic_delisted_fastest() {
    // Paper: dynamic addresses leave blocklists fastest (77.5% within two
    // days vs 60% NATed vs 42% of everything); mean residences 3 < 9 < 10
    // days. The orderings are the scale-free claims.
    let d = durations(study()).summary();
    assert!(
        d.within2_dynamic > d.within2_all,
        "dynamic {:.2} vs all {:.2}",
        d.within2_dynamic,
        d.within2_all
    );
    assert!(
        d.within2_all > d.within2_natted,
        "all {:.2} vs natted {:.2}",
        d.within2_all,
        d.within2_natted
    );
    assert!(d.mean_days_dynamic < d.mean_days_all);
    assert!(d.mean_days_all < d.mean_days_natted);
}

#[test]
fn figure8_small_nats_dominate_with_heavy_tail() {
    let i = impact(study()).summary();
    assert!(i.natted_blocklisted >= 20, "join too small: {i:?}");
    // Two users is the modal detection and small counts dominate; the tail
    // reaches into the dozens (paper: 68.5% exactly two, 97.8% < 10, max
    // 78 — our bound is tighter than the paper's because simulated port
    // discovery is more complete, see EXPERIMENTS.md).
    assert!(
        i.exactly_two >= 0.15,
        "two-user share {:.2} too small",
        i.exactly_two
    );
    assert!(i.under_ten >= 0.5, "under-ten share {:.2}", i.under_ten);
    assert!(i.max_users >= 15, "tail too short: {}", i.max_users);
}

#[test]
fn figure5_some_lists_carry_no_reused_addresses() {
    let n = natted_per_list(study());
    assert!(n.lists_with_none > 0);
    assert!(n.lists_with_none < 151, "but not all");
    assert!(n.listings as usize >= n.addresses);
}

#[test]
fn figure3_coverage_is_partial() {
    let c = coverage(study());
    // The detectors cover strictly fewer ASes than blocklists do (paper:
    // 29.6% and 17.1%).
    assert!(c.ases_bt < c.ases_blocklisted);
    assert!(c.ases_ripe < c.ases_blocklisted);
    assert!(c.ases_bt > 0 && c.ases_ripe > 0);
}

#[test]
fn published_list_is_consistent_with_detectors() {
    let s = study();
    let entries = reused_address_list(s);
    let natted = s.natted_blocklisted();
    let dynamic = s.dynamic_blocklisted();
    assert_eq!(entries.len(), natted.union(&dynamic).len());
    for e in &entries {
        match e.evidence {
            ReuseEvidence::Natted { users } => {
                assert!(natted.contains(e.ip));
                assert!(users >= 2);
            }
            ReuseEvidence::DynamicPrefix => assert!(dynamic.contains(e.ip)),
        }
        assert!(e.lists >= 1, "{:?} is published but not blocklisted", e);
    }
}

#[test]
fn campaign_is_reproducible() {
    let a = Study::run(StudyConfig::quick_test(Seed(4242)));
    let b = Study::run(StudyConfig::quick_test(Seed(4242)));
    assert_eq!(a.blocklists.listings, b.blocklists.listings);
    assert_eq!(a.crawl_totals().pings_sent, b.crawl_totals().pings_sent);
    let mut na: Vec<_> = a.natted_ips().into_iter().collect();
    let mut nb: Vec<_> = b.natted_ips().into_iter().collect();
    na.sort();
    nb.sort();
    assert_eq!(na, nb);
    assert_eq!(a.atlas.dynamic_prefixes, b.atlas.dynamic_prefixes);
    assert_eq!(a.census.dynamic_blocks, b.census.dynamic_blocks);
}
