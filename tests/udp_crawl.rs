//! The §3.1 crawler over REAL UDP: crawl a loopback swarm of genuine KRPC
//! nodes and verify the NAT rule end to end on actual datagrams.
//!
//! The loopback swarm is, structurally, one NAT: many independent nodes
//! (distinct node_ids, distinct ports) sharing the IP 127.0.0.1. A correct
//! crawler must therefore classify 127.0.0.1 as a reused address with a
//! user lower bound approaching the swarm size — which is exactly what the
//! paper's crawler would conclude about a CGN.

use ar_crawler::{crawl, CrawlConfig};
use ar_dht::udp::{DhtNode, UdpKrpc};
use ar_dht::NodeId;
use ar_simnet::time::{date, SimDuration, TimeWindow};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn spawn_swarm(n: usize, seed: u64) -> Vec<DhtNode> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes: Vec<DhtNode> = (0..n)
        .map(|_| DhtNode::spawn(NodeId::random(&mut rng), "127.0.0.1:0".parse().unwrap()).unwrap())
        .collect();
    // Fully mesh the routing tables so find_node surfaces everyone.
    for a in &nodes {
        for b in &nodes {
            if a.addr() != b.addr() {
                a.add_contact(b.id(), b.addr());
            }
        }
    }
    nodes
}

#[test]
fn real_udp_crawl_detects_the_loopback_swarm_as_nat() {
    let nodes = spawn_swarm(6, 4242);
    let mut net = UdpKrpc {
        bootstrap_peers: vec![nodes[0].addr()],
        timeout: Duration::from_millis(400),
    };

    // Two virtual hours: one discovery sweep plus two ping rounds. The
    // per-IP cooldown must be lifted — the whole swarm shares 127.0.0.1,
    // and politeness toward oneself is not required.
    let start = date(2020, 1, 1);
    let window = TimeWindow::new(start, start + SimDuration::from_hours(2));
    let mut config = CrawlConfig::new(window);
    config.rate_per_sec = 1; // 7200 queries max; the swarm needs ~50
    config.bootstrap_size = 4;
    config.per_ip_cooldown = SimDuration::from_secs(0);

    let report = crawl(&mut net, &config);

    assert!(report.stats.get_nodes_sent > 0);
    assert!(report.stats.pings_sent > 0);
    assert!(
        report.stats.replies_received > 0,
        "real datagrams must flow: {:?}",
        report.stats
    );

    let loopback: std::net::Ipv4Addr = "127.0.0.1".parse().unwrap();
    let bound = report
        .user_lower_bound(loopback)
        .expect("the swarm must be classified as NATed");
    assert!(
        bound >= 4,
        "expected ≥4 simultaneous users behind 127.0.0.1, got {bound}"
    );
    // And every detected port is one of the swarm's listening ports.
    let ports: std::collections::HashSet<u16> = nodes.iter().map(|n| n.addr().port()).collect();
    let seen = &report.observations[&loopback];
    let known = seen.ports.keys().filter(|p| ports.contains(p)).count();
    assert!(known >= 4, "crawler saw {known} of the swarm's ports");

    for n in nodes {
        n.shutdown();
    }
}

#[test]
fn real_udp_crawl_survives_node_churn() {
    // Half the swarm dies mid-crawl: the crawler must keep functioning and
    // its user bound must never exceed what was actually alive at once.
    let mut nodes = spawn_swarm(6, 777);
    let mut net = UdpKrpc {
        bootstrap_peers: vec![nodes[0].addr(), nodes[1].addr()],
        timeout: Duration::from_millis(300),
    };

    let start = date(2020, 1, 1);
    let window = TimeWindow::new(start, start + SimDuration::from_hours(1));
    let mut config = CrawlConfig::new(window);
    config.rate_per_sec = 1;
    config.per_ip_cooldown = SimDuration::from_secs(0);

    // Kill three nodes before the crawl (simplest deterministic churn: the
    // crawler still *discovers* their endpoints from survivors' tables but
    // pings to them time out — stale-port handling over real sockets).
    for dead in nodes.drain(3..) {
        dead.shutdown();
    }

    let report = crawl(&mut net, &config);
    let loopback: std::net::Ipv4Addr = "127.0.0.1".parse().unwrap();
    if let Some(bound) = report.user_lower_bound(loopback) {
        assert!(bound <= 3, "only 3 nodes were alive, bound {bound}");
    }
    // Dead endpoints appear as advertised-but-unconfirmed ports.
    if let Some(obs) = report.observations.get(&loopback) {
        let dead_ports = obs.ports.values().filter(|p| !p.confirmed_live).count();
        assert!(dead_ports > 0, "survivor tables advertise the dead");
    }
    for n in nodes {
        n.shutdown();
    }
}
