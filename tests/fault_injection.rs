//! Acceptance tests for the fault-injection layer (the robustness PR's
//! contract):
//!
//! 1. a **zero-intensity** fault plan is a strict no-op — every joined view
//!    of the study is identical to a fault-free run;
//! 2. a **nonzero** plan is survived: mid-crawl outages are ridden out via
//!    checkpoint/resume, damaged feeds are reconstructed gap-tolerantly,
//!    and the study completes with `Degraded` annotations instead of
//!    falling over.

use address_reuse::{PhaseStatus, Study, StudyConfig};
use ar_crawler::RetryPolicy;
use ar_faults::FaultSpec;
use ar_simnet::rng::Seed;

fn faulted(seed: u64, fault_seed: u64, intensity: f64) -> Study {
    let mut config = StudyConfig::quick_test(Seed(seed));
    config.threads = Some(1);
    config.faults = Some(FaultSpec::new(Seed(fault_seed), intensity));
    Study::run(config)
}

#[test]
fn zero_intensity_plan_is_byte_identical_to_fault_free() {
    let mut clean_config = StudyConfig::quick_test(Seed(2077));
    clean_config.threads = Some(1);
    let clean = Study::run(clean_config);
    let zero = faulted(2077, 99, 0.0);

    // The plan exists but schedules nothing.
    let plan = zero.fault_plan.as_ref().expect("spec given, plan built");
    assert!(plan.is_zero(), "zero intensity must yield an empty plan");
    assert!(zero.health.is_clean());
    assert!(clean.fault_plan.is_none());

    // Raw substrate outputs.
    assert_eq!(clean.blocklists.listings, zero.blocklists.listings);
    assert_eq!(clean.blocklists.all_ips(), zero.blocklists.all_ips());
    assert_eq!(clean.crawl_totals(), zero.crawl_totals());
    assert_eq!(clean.atlas.knee, zero.atlas.knee);
    assert_eq!(clean.atlas.dynamic_prefixes, zero.atlas.dynamic_prefixes);
    assert_eq!(clean.atlas_log.entries, zero.atlas_log.entries);
    assert_eq!(clean.census.dynamic_blocks, zero.census.dynamic_blocks);
    assert_eq!(clean.census.pings_sent, zero.census.pings_sent);
    assert_eq!(clean.census.replies, zero.census.replies);

    // Every joined view the figures are computed from.
    assert_eq!(clean.natted_ips(), zero.natted_ips());
    assert_eq!(clean.bittorrent_ips(), zero.bittorrent_ips());
    assert_eq!(clean.natted_blocklisted(), zero.natted_blocklisted());
    assert_eq!(clean.dynamic_blocklisted(), zero.dynamic_blocklisted());
    assert_eq!(clean.census_blocklisted(), zero.census_blocklisted());
    assert_eq!(
        clean.atlas_funnel_blocklisted(),
        zero.atlas_funnel_blocklisted()
    );
}

#[test]
fn nonzero_intensity_is_survived_with_degraded_annotations() {
    let study = faulted(2078, 4242, 1.0);
    let plan = study.fault_plan.as_ref().expect("plan built");

    // Intensity 1.0 deterministically schedules at least one of everything
    // that matters here.
    assert!(plan.has_outages(), "outage schedule empty at intensity 1.0");
    assert!(plan.has_feed_faults());
    assert!(!study.health.is_clean());
    let reasons = study.health.degraded_reasons();
    assert!(!reasons.is_empty());

    // The outage-hit crawls went through checkpoint/resume and still
    // produced reports.
    let survived = study
        .health
        .crawls
        .iter()
        .any(|s| matches!(s, PhaseStatus::Degraded(why) if why.contains("checkpoint/resume")));
    assert!(
        survived,
        "no crawl reported outage survival; reasons: {reasons:?}"
    );
    assert!(!study
        .health
        .crawls
        .iter()
        .any(|s| matches!(s, PhaseStatus::Failed(_))));
    assert_eq!(study.crawls.len(), study.config.periods.len());
    for report in &study.crawls {
        assert!(report.stats.pings_sent > 0, "crawl produced no traffic");
    }

    // Degradation hurts recall, never precision: everything still detected
    // as NATed is truly NATed.
    let natted: Vec<_> = study.natted_ips().iter().collect();
    assert!(
        natted.iter().all(|ip| study.universe.is_truly_natted(*ip)),
        "faults must not fabricate NAT detections"
    );

    // The whole campaign completed: every view is computable.
    let _ = study.natted_blocklisted();
    let _ = study.dynamic_blocklisted();
    let _ = study.census_blocklisted();
    let _ = study.atlas_funnel_blocklisted();
}

#[test]
fn retry_policy_recovers_pings_under_bursty_loss() {
    // Same faulted world, retries off vs on: the resilient policy must
    // actually re-send (retries > 0) and convert some re-sends into
    // replies, and it never reduces what the crawler found.
    let base = faulted(2079, 31337, 1.0);
    let mut retry_config = StudyConfig::quick_test(Seed(2079));
    retry_config.threads = Some(1);
    retry_config.faults = Some(FaultSpec::new(Seed(31337), 1.0));
    retry_config.ping_retry = RetryPolicy::resilient();
    let resilient = Study::run(retry_config);

    let base_totals = base.crawl_totals();
    let resilient_totals = resilient.crawl_totals();
    assert_eq!(base_totals.ping_retries, 0, "default policy never re-sends");
    assert!(
        resilient_totals.ping_retries > 0,
        "resilient policy must retry"
    );
    assert!(
        resilient_totals.pings_recovered > 0,
        "retries should rescue some replies under bursty loss"
    );
    assert!(resilient_totals.pings_sent > base_totals.pings_sent);
}
