//! Wire-level interop: the codec the simulated crawl uses must speak to a
//! real KRPC node over genuine UDP datagrams, and the bencode layer must
//! match the BEP-5 reference vectors byte for byte.

use ar_bencode::Value;
use ar_dht::udp::{query_once, DhtNode};
use ar_dht::{Message, MessageBody, NodeId, Query};
use std::time::Duration;

#[test]
fn bep5_reference_vectors() {
    // Straight from BEP-5's examples (ids swapped for valid 20-byte ones).
    let id = NodeId::from_bytes(b"abcdefghij0123456789").unwrap();
    let target = NodeId::from_bytes(b"mnopqrstuvwxyz123456").unwrap();

    let ping = Message::query(b"aa", Query::Ping { id });
    assert_eq!(
        ping.encode(),
        b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe"
    );

    let find = Message::query(b"aa", Query::FindNode { id, target });
    assert_eq!(
        find.encode(),
        b"d1:ad2:id20:abcdefghij0123456789\
          6:target20:mnopqrstuvwxyz123456e1:q9:find_node1:t2:aa1:y1:qe"
            .iter()
            .filter(|c| **c != b' ')
            .copied()
            .collect::<Vec<u8>>()
    );

    let get_peers = Message::query(
        b"aa",
        Query::GetPeers {
            id,
            info_hash: *b"mnopqrstuvwxyz123456",
        },
    );
    assert_eq!(
        get_peers.encode(),
        b"d1:ad2:id20:abcdefghij01234567899:info_hash20:mnopqrstuvwxyz123456e\
          1:q9:get_peers1:t2:aa1:y1:qe"
            .iter()
            .filter(|c| **c != b' ')
            .copied()
            .collect::<Vec<u8>>()
    );
}

#[test]
fn decoded_wire_is_canonical_bencode() {
    let id = NodeId([0x11; 20]);
    let wire = Message::query(b"zz", Query::Ping { id }).encode();
    let value = Value::decode(&wire).expect("KRPC output is valid bencode");
    assert_eq!(value.encode(), wire, "canonical round-trip");
    assert_eq!(value.get(b"y").unwrap().as_bytes(), Some(&b"q"[..]));
    assert_eq!(value.get(b"q").unwrap().as_str(), Some("ping"));
}

#[test]
fn simulated_crawler_messages_served_by_real_node() {
    // The exact Message values the crawl engine builds, served over real
    // loopback UDP by the DhtNode implementation.
    let server_id = NodeId([0x42; 20]);
    let node = DhtNode::spawn(server_id, "127.0.0.1:0".parse().unwrap()).unwrap();

    // Seed contacts so find_node has something to answer with.
    for i in 0..8u8 {
        node.add_contact(
            NodeId([i + 1; 20]),
            format!("127.0.0.{}:6881", i + 2).parse().unwrap(),
        );
    }

    let crawler_id = NodeId::from_ip_and_nonce("127.0.0.1".parse().unwrap(), 0xC4A3);

    // bt_ping.
    let pong = query_once(
        node.addr(),
        &Message::query(1u32.to_be_bytes(), Query::Ping { id: crawler_id }),
        Duration::from_secs(2),
    )
    .unwrap();
    let MessageBody::Response(r) = pong.body else {
        panic!("expected pong")
    };
    assert_eq!(r.id, Some(server_id));
    assert_eq!(pong.transaction.as_ref(), 1u32.to_be_bytes());

    // get_nodes.
    let reply = query_once(
        node.addr(),
        &Message::query(
            2u32.to_be_bytes(),
            Query::FindNode {
                id: crawler_id,
                target: NodeId([3; 20]),
            },
        ),
        Duration::from_secs(2),
    )
    .unwrap();
    let MessageBody::Response(r) = reply.body else {
        panic!("expected nodes")
    };
    let nodes = r.nodes.expect("find_node carries nodes");
    assert!(!nodes.is_empty() && nodes.len() <= 8);
    // Closest to target [3;20] must include the exact contact.
    assert!(nodes.iter().any(|n| n.id == NodeId([3; 20])));

    node.shutdown();
}

#[test]
fn real_node_rejects_garbage_like_the_decoder_says() {
    let node = DhtNode::spawn(NodeId([9; 20]), "127.0.0.1:0".parse().unwrap()).unwrap();
    let socket = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    // Non-canonical bencode (unsorted keys) must be answered with a 203
    // protocol error, not silence or a crash.
    socket
        .send_to(
            b"d1:y1:q1:q4:ping1:t2:aa1:ad2:id20:abcdefghij0123456789ee",
            node.addr(),
        )
        .unwrap();
    let mut buf = [0u8; 512];
    let (len, _) = socket.recv_from(&mut buf).unwrap();
    let reply = Message::decode(&buf[..len]).unwrap();
    match reply.body {
        MessageBody::Error(e) => assert_eq!(e.code, 203),
        other => panic!("expected protocol error, got {other:?}"),
    }
}
