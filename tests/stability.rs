//! Repeated-run stability: five consecutive in-process runs of the same
//! configuration must produce byte-identical artifacts and reports.
//!
//! The existing identity tests vary one axis at a time (thread count,
//! metrics on/off); this closes the remaining gap — drift *between
//! consecutive runs in one process* (leaked global state, address-space
//! layout sneaking into an iteration order, a time value escaping into a
//! rendered artifact) — which none of those pairwise checks would catch.

use address_reuse::{render_summary, Study, StudyConfig};
use ar_faults::FaultSpec;
use ar_simnet::rng::Seed;

fn config() -> StudyConfig {
    let mut config = StudyConfig::quick_test(Seed(4242));
    config.threads = Some(2);
    // Faults on, so the event stream and health verdicts are non-trivial.
    config.faults = Some(FaultSpec::new(Seed(99), 1.0));
    config
}

/// Fault-free repeat-run stability on the partitioned crawl path: three
/// threads (a ragged split of the eight crawl shards) must reproduce the
/// same summary and report on every run. The faulted test above exercises
/// the serial fallback crawl; this one pins the sharded branch.
#[test]
fn sharded_runs_are_repeat_stable() {
    let mut reference: Option<(String, String)> = None;
    for round in 0..3 {
        let mut config = StudyConfig::quick_test(Seed(4242));
        config.threads = Some(3);
        let study = Study::run(config);
        let summary = render_summary(&study);
        let mut report = study.run_report.expect("metrics on by default");
        report.strip_timings();
        let report_json = serde_json::to_string_pretty(&report).expect("report serializes");
        match &reference {
            None => reference = Some((summary, report_json)),
            Some(first) => {
                assert_eq!(
                    first.0, summary,
                    "summary drifted between run 0 and run {round}"
                );
                assert_eq!(
                    first.1, report_json,
                    "RunReport (timings stripped) drifted between run 0 and run {round}"
                );
            }
        }
    }
}

#[test]
fn five_consecutive_runs_are_byte_identical() {
    let mut reference: Option<(String, String)> = None;
    for round in 0..5 {
        let study = Study::run(config());
        let summary = render_summary(&study);
        let mut report = study.run_report.expect("metrics on by default");
        report.strip_timings();
        let report_json = serde_json::to_string_pretty(&report).expect("report serializes");
        let report_md = report.render_md();
        // The rendered Markdown is derived from the stripped report, so
        // bundle both serializations into the comparison.
        let bundle = (summary, format!("{report_json}\n{report_md}"));
        match &reference {
            None => reference = Some(bundle),
            Some(first) => {
                assert_eq!(
                    first.0, bundle.0,
                    "summary drifted between run 0 and run {round}"
                );
                assert_eq!(
                    first.1, bundle.1,
                    "RunReport (timings stripped) drifted between run 0 and run {round}"
                );
            }
        }
    }
}
