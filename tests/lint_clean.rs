//! Tier-1 gate: the workspace must lint clean.
//!
//! Runs the full `ar-lint` pass over the repository and fails on any
//! non-allowlisted finding, so a determinism/entropy/panic-safety/taxonomy
//! regression fails `cargo test` the same way it fails the CI lint job.

use ar_lint::lint_workspace;

#[test]
fn workspace_has_zero_active_findings() {
    let root = ar_lint::default_root();
    let run = lint_workspace(&root).expect("lint pass runs");
    assert!(
        run.files_scanned > 30,
        "scan saw {} files — walk broken?",
        run.files_scanned
    );
    let active = run.active();
    assert!(
        active.is_empty(),
        "{} active finding(s):\n{}",
        active.len(),
        active
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_allowlist_entry_is_justified_and_used() {
    let root = ar_lint::default_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let config = ar_lint::Config::parse(&text).expect("lint.toml parses");
    assert!(!config.allows.is_empty(), "expected a non-empty allowlist");
    for entry in &config.allows {
        assert!(
            entry.reason.trim().len() >= 10,
            "allow entry {}:{}:{} needs a real justification, got {:?}",
            entry.rule,
            entry.path,
            entry.symbol,
            entry.reason
        );
    }
    // Stale or unjustified entries surface as CONFIG findings, which the
    // zero-active-findings test above would catch; this asserts the lint
    // run agrees the config is clean.
    let run = lint_workspace(&root).expect("lint pass runs");
    assert!(run
        .findings
        .iter()
        .all(|f| f.rule != "CONFIG" || !f.is_active()));
}

#[test]
fn lint_report_has_the_runreport_shape() {
    let root = ar_lint::default_root();
    let run = lint_workspace(&root).expect("lint pass runs");
    let report = run.report();
    assert!(report.counters["lint.files_scanned"] > 30);
    // The report IS an ar_obs::RunReport, so it serializes through the
    // same serde schema as study metrics (the JSON↔struct round-trip
    // itself is ar-obs's own test's job)…
    let _: &ar_obs::RunReport = &report;
    serde_json::to_string_pretty(&report).expect("serializes");
    // …and renders with the standard Markdown renderer.
    let md = report.render_md();
    assert!(md.contains("## Run report"));
    assert!(md.contains("lint.files_scanned"));
}
