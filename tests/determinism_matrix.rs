//! Determinism matrix: every stochastic component must be a pure function
//! of `(Seed, config)` — and actually respond to seed changes. Both halves
//! matter: silent nondeterminism breaks reproducibility (EXPERIMENTS.md's
//! reference run), while seed-insensitivity would mean a component ignores
//! its randomness and the "distributions" are artifacts.

use ar_atlas::{detect_dynamic, generate_fleet, PipelineConfig};
use ar_blocklists::{build_catalog, generate_dataset, malice_events};
use ar_census::{run_census, Classifier, SurveyConfig};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::config::UniverseConfig;
use ar_simnet::rng::Seed;
use ar_simnet::time::{date, TimeWindow, PERIOD_2};
use ar_simnet::universe::Universe;
use ar_survey::{generate_respondents, SurveyTargets};

fn window() -> TimeWindow {
    TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10))
}

fn build(seed: u64) -> (Universe, AllocationPlan) {
    let u = Universe::generate(Seed(seed), &UniverseConfig::tiny());
    let a = AllocationPlan::build(&u, window(), InterestSet::Observable);
    (u, a)
}

#[test]
fn universe_generation() {
    let (a, _) = build(42);
    let (b, _) = build(42);
    let (c, _) = build(43);
    assert_eq!(
        serde_json::to_string(&a.summary()).unwrap(),
        serde_json::to_string(&b.summary()).unwrap()
    );
    assert_ne!(
        serde_json::to_string(&a.summary()).unwrap(),
        serde_json::to_string(&c.summary()).unwrap()
    );
}

#[test]
fn malice_event_stream() {
    let (u1, a1) = build(42);
    let (u2, a2) = build(42);
    let e1 = malice_events(&u1, &a1, window());
    let e2 = malice_events(&u2, &a2, window());
    assert_eq!(e1.len(), e2.len());
    for (x, y) in e1.iter().zip(&e2) {
        assert_eq!(x.time, y.time);
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.actor, y.actor);
    }
    let (u3, a3) = build(77);
    let e3 = malice_events(&u3, &a3, window());
    assert_ne!(e1.len(), e3.len());
}

#[test]
fn blocklist_generation() {
    let (u1, a1) = build(42);
    let (u2, a2) = build(42);
    let d1 = generate_dataset(&u1, &[(window(), &a1)], build_catalog());
    let d2 = generate_dataset(&u2, &[(window(), &a2)], build_catalog());
    assert_eq!(d1.listings, d2.listings);
}

#[test]
fn atlas_detection() {
    let run = |seed| {
        let u = Universe::generate(Seed(seed), &UniverseConfig::tiny());
        let a = AllocationPlan::build(&u, ar_simnet::time::ATLAS_WINDOW, InterestSet::ProbesOnly);
        let (_p, log) = generate_fleet(&u, &a, ar_simnet::time::ATLAS_WINDOW);
        let d = detect_dynamic(&log, &PipelineConfig::default(), |ip| u.asn_of(ip));
        (d.knee, d.dynamic_prefixes)
    };
    let (k1, p1) = run(42);
    let (k2, p2) = run(42);
    assert_eq!(k1, k2);
    assert_eq!(p1, p2);
    let (_, p3) = run(99);
    assert_ne!(p1, p3, "different seeds explore different universes");
}

#[test]
fn census_classification() {
    let run = |seed| {
        let u = Universe::generate(Seed(seed), &UniverseConfig::tiny());
        run_census(
            &u,
            &SurveyConfig::two_weeks_from(PERIOD_2.start),
            &Classifier::default(),
        )
        .dynamic_blocks
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(4242));
}

#[test]
fn parallel_study_equals_serial_study() {
    // The orchestrator's contract: thread count is a pure performance knob.
    // `threads: Some(1)` takes the fully serial path; every other count
    // fans the phases (and the sharded crawl's workers) out. The assembled
    // studies must be byte-identical across the whole ladder, including a
    // count (3) that divides neither the shard count nor the period count.
    use address_reuse::{Study, StudyConfig};
    let run = |threads: usize| {
        let mut config = StudyConfig::quick_test(Seed(5150));
        config.threads = Some(threads);
        Study::run(config)
    };
    // The joined views — what every figure is computed from — serialize
    // identically too.
    let views = |s: &Study| {
        serde_json::to_string(&(
            s.natted_blocklisted(),
            s.dynamic_blocklisted(),
            s.census_blocklisted(),
            s.atlas_funnel_blocklisted(),
        ))
        .unwrap()
    };
    let serial = run(1);
    for threads in [2, 3, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial.blocklists.listings, parallel.blocklists.listings,
            "listings drifted at {threads} threads"
        );
        assert_eq!(serial.blocklists.all_ips(), parallel.blocklists.all_ips());
        assert_eq!(serial.natted_ips(), parallel.natted_ips());
        assert_eq!(serial.bittorrent_ips(), parallel.bittorrent_ips());
        assert_eq!(
            serial.crawl_totals(),
            parallel.crawl_totals(),
            "crawl totals drifted at {threads} threads"
        );
        assert_eq!(serial.atlas.knee, parallel.atlas.knee);
        assert_eq!(
            serial.atlas.dynamic_prefixes,
            parallel.atlas.dynamic_prefixes
        );
        assert_eq!(serial.census.dynamic_blocks, parallel.census.dynamic_blocks);
        assert_eq!(
            views(&serial),
            views(&parallel),
            "joined views drifted at {threads} threads"
        );
    }
}

#[test]
fn sharded_crawl_is_worker_count_invariant() {
    // The partitioned crawler's contract: the fixed logical shard layout —
    // not the worker-thread count — determines the artifacts. The same
    // 8-shard crawl run on {1, 2, 3, 8} workers (3 leaves a ragged final
    // chunk) and repeated at one count must serialize byte-identically;
    // a different universe seed must not.
    use ar_crawler::{crawl_sharded, CrawlConfig};
    use ar_dht::{ShardedSimNetwork, SimParams};

    let run = |seed: u64, workers: usize| {
        let (u, a) = build(seed);
        let fabric = ShardedSimNetwork::new(&u, &a, SimParams::default());
        let mut config = CrawlConfig::new(window());
        // Retain log records so the comparison covers the merged message
        // timeline, not just the exact counters.
        config.log_head = 64;
        config.log_tail = 64;
        let report = crawl_sharded(fabric.shards(config.shards), &config, workers);
        let bytes = serde_json::to_string(&(&report.stats, &report.observations, &report.log))
            .expect("report serializes");
        (bytes, report.stats)
    };

    let (baseline, stats) = run(42, 1);
    assert!(
        stats.pings_sent > 0,
        "crawl must actually verify candidates"
    );
    assert!(stats.unique_ips > 0, "crawl must discover endpoints");
    for workers in [1, 2, 3, 8] {
        let (again, _) = run(42, workers);
        assert_eq!(
            baseline, again,
            "crawl artifacts drifted at {workers} workers"
        );
    }
    let (other_seed, _) = run(77, 2);
    assert_ne!(
        baseline, other_seed,
        "different seeds must explore different universes"
    );
}

#[test]
fn faulted_study_is_thread_count_invariant() {
    // Fault injection must not loosen the orchestrator's determinism
    // contract: with a fixed FaultPlan seed, the degraded study — damaged
    // feeds, checkpoint-resumed crawls, censored Atlas log, blacked-out
    // census — is byte-identical across thread counts too.
    use address_reuse::{Study, StudyConfig};
    use ar_crawler::RetryPolicy;
    use ar_faults::FaultSpec;
    let run = |threads: usize| {
        let mut config = StudyConfig::quick_test(Seed(5150));
        config.threads = Some(threads);
        config.faults = Some(FaultSpec::new(Seed(777), 0.8));
        config.ping_retry = RetryPolicy::resilient();
        Study::run(config)
    };
    let serial = run(1);
    let parallel = run(8);

    // The executed fault schedule itself is a pure function of the spec.
    let summary = |s: &Study| {
        let p = s.fault_plan.as_ref().expect("plan present");
        (
            p.blackouts.clone(),
            p.crawler_outages.clone(),
            p.feed_faults.len(),
            p.atlas_gaps.clone(),
            p.loss_bursts.len(),
        )
    };
    assert_eq!(summary(&serial), summary(&parallel));
    assert!(
        serial.fault_plan.as_ref().unwrap().has_any(),
        "intensity 0.8 must schedule faults"
    );

    assert_eq!(serial.blocklists.listings, parallel.blocklists.listings);
    assert_eq!(serial.blocklists.all_ips(), parallel.blocklists.all_ips());
    assert_eq!(serial.natted_ips(), parallel.natted_ips());
    assert_eq!(serial.bittorrent_ips(), parallel.bittorrent_ips());
    assert_eq!(serial.crawl_totals(), parallel.crawl_totals());
    assert_eq!(serial.atlas.knee, parallel.atlas.knee);
    assert_eq!(
        serial.atlas.dynamic_prefixes,
        parallel.atlas.dynamic_prefixes
    );
    assert_eq!(
        serial.atlas_log.entries.len(),
        parallel.atlas_log.entries.len()
    );
    assert_eq!(serial.census.dynamic_blocks, parallel.census.dynamic_blocks);
    assert_eq!(
        serial.census.blackout_suppressed,
        parallel.census.blackout_suppressed
    );
    // Health annotations — including the degradation reason strings, which
    // embed exact loss counts — agree as well.
    assert_eq!(
        serial.health.degraded_reasons(),
        parallel.health.degraded_reasons()
    );
}

#[test]
fn survey_pool() {
    let a = generate_respondents(Seed(42), &SurveyTargets::default());
    let b = generate_respondents(Seed(42), &SurveyTargets::default());
    let c = generate_respondents(Seed(43), &SurveyTargets::default());
    let digest = |pool: &[ar_survey::Respondent]| {
        pool.iter()
            .map(|r| (r.paid_lists, r.public_lists, r.list_types.len()))
            .collect::<Vec<_>>()
    };
    assert_eq!(digest(&a), digest(&b));
    assert_ne!(digest(&a), digest(&c));
    // Quotas hold at every seed regardless.
    for pool in [&a, &c] {
        assert_eq!(pool.iter().filter(|r| r.answered_reuse).count(), 34);
    }
}
