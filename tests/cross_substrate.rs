//! Cross-substrate consistency: the same ground truth must surface
//! coherently in every measurement channel (DHT crawl, blocklists, Atlas
//! logs, census) — the property that makes the joined analyses meaningful.

use ar_blocklists::{build_catalog, generate_dataset, malice_events};
use ar_crawler::{crawl, CrawlConfig, Scope};
use ar_dht::{DhtPopulation, PopulationParams, SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::hosts::Attachment;
use ar_simnet::ip::Prefix24;
use ar_simnet::time::{date, SimDuration, TimeWindow};
use ar_simnet::{Seed, Universe, UniverseConfig};
use std::collections::HashSet;
use std::sync::Arc;

fn window() -> TimeWindow {
    TimeWindow::new(date(2019, 8, 3), date(2019, 8, 13))
}

fn fixture() -> (Universe, AllocationPlan) {
    let universe = Universe::generate(Seed(31337), &UniverseConfig::tiny());
    let alloc = AllocationPlan::build(&universe, window(), InterestSet::Observable);
    (universe, alloc)
}

#[test]
fn malice_events_and_dht_share_addresses() {
    let (universe, alloc) = fixture();
    let events = malice_events(&universe, &alloc, window());
    let pop = DhtPopulation::new(&universe, &alloc, PopulationParams::default());

    // For malicious BitTorrent hosts, the address the blocklists see at
    // time t is the address the DHT endpoint uses at time t.
    let mut checked = 0;
    for e in &events {
        let host = universe.host(e.actor);
        if !host.behavior.bittorrent {
            continue;
        }
        if let Some(ep) = pop.endpoint(e.actor, e.time) {
            assert_eq!(
                *ep.ip(),
                e.ip,
                "substrates disagree on {}'s address at {}",
                e.actor,
                e.time
            );
            checked += 1;
        }
    }
    assert!(checked > 20, "need real overlap to validate ({checked})");
}

#[test]
fn nat_gateway_taint_reaches_blocklists_and_crawler() {
    let (universe, alloc) = fixture();
    let dataset = generate_dataset(&universe, &[(window(), &alloc)], build_catalog());
    let blocklisted = dataset.all_ips();

    // Ground truth: NAT gateways with a malicious user *active during the
    // test window* (activity offsets span the full measurement period, so
    // many actors simply haven't started yet in a 10-day window).
    let tainted_gateways: HashSet<_> = universe
        .hosts
        .iter()
        .filter(|h| {
            h.behavior
                .malice
                .as_ref()
                .and_then(|m| m.active_window(&window()))
                .is_some()
        })
        .filter_map(|h| match h.attachment {
            Attachment::NatUser { nat, .. } => Some(universe.nat(nat).ip),
            _ => None,
        })
        .collect();
    assert!(!tainted_gateways.is_empty());
    // Most tainted gateways end up blocklisted (catch rates are high enough
    // in test universes).
    let listed = tainted_gateways
        .iter()
        .filter(|ip| blocklisted.contains(**ip))
        .count();
    assert!(
        listed * 2 >= tainted_gateways.len(),
        "{listed}/{} tainted gateways listed",
        tainted_gateways.len()
    );

    // And the crawler, when scoped to blocklisted space like the paper's,
    // only ever verdicts inside that space.
    let scope = Arc::new(blocklisted.prefixes());
    let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
    let report = crawl(
        &mut net,
        &CrawlConfig::new(window()).with_scope(Scope::Prefixes(Arc::clone(&scope))),
    );
    for ip in report.natted_ips() {
        assert!(scope.contains(Prefix24::of(ip)));
        assert!(universe.is_truly_natted(ip));
    }
}

#[test]
fn dynamic_blocklisted_addresses_lie_in_simulated_pools() {
    let (universe, alloc) = fixture();
    let dataset = generate_dataset(&universe, &[(window(), &alloc)], build_catalog());
    let mut dynamic_listed = 0;
    for ip in dataset.all_ips() {
        if universe.is_truly_dynamic(ip) {
            dynamic_listed += 1;
            // The listing must trace back to a simulated holder at listing
            // time (give the triage delay ±2 days of slack).
            let listings = dataset.listings_of_ip(ip);
            let any_holder = listings.iter().any(|l| {
                // Scan at lease granularity: fast-pool holds can be as
                // short as 15 minutes.
                let mut t = l.start.saturating_sub_duration(SimDuration::from_days(2));
                let mut found = false;
                while t < l.start + SimDuration::from_days(1) {
                    if alloc.holder_of(ip, t).is_some() {
                        found = true;
                        break;
                    }
                    t += SimDuration::from_mins(15);
                }
                found
            });
            assert!(any_holder, "{ip} listed with no simulated holder nearby");
        }
    }
    assert!(
        dynamic_listed > 5,
        "dynamic listings exist ({dynamic_listed})"
    );
}

#[test]
fn observable_interest_set_covers_every_event_actor() {
    let (universe, alloc) = fixture();
    let events = malice_events(&universe, &alloc, window());
    // Every dynamic-attached actor that produced an event must have been
    // simulated by the Observable plan (otherwise events would silently
    // vanish for unsimulated hosts).
    for e in &events {
        if matches!(
            universe.host(e.actor).attachment,
            Attachment::DynamicSub { .. }
        ) {
            assert!(
                alloc.timeline(e.actor).is_some(),
                "{} emitted events without a timeline",
                e.actor
            );
        }
    }
}
