//! Acceptance tests for the observability layer (`ar-obs` wired through
//! `Study::run`):
//!
//! 1. instrumentation **observes, never perturbs** — every study artifact is
//!    byte-identical with metrics on or off;
//! 2. the `RunReport` is **deterministic**: all non-timing fields are equal
//!    across thread counts;
//! 3. a faulted run's **event stream matches the fault plan** (feed days
//!    missed, blackouts entered/exited, checkpoints resumed, retries fired),
//!    and a zero-intensity run emits no events at all.

use address_reuse::{
    render_experiments_md, render_reused_list, render_summary, reused_address_list, EventKind,
    RunReport, Study, StudyConfig,
};
use ar_crawler::RetryPolicy;
use ar_faults::FaultSpec;
use ar_simnet::rng::Seed;

fn faulted_config(seed: u64, fault_seed: u64, intensity: f64) -> StudyConfig {
    let mut config = StudyConfig::quick_test(Seed(seed));
    config.threads = Some(1);
    config.faults = Some(FaultSpec::new(Seed(fault_seed), intensity));
    config.ping_retry = RetryPolicy::resilient();
    config
}

/// Sum of `count` over every event of one kind.
fn event_total(report: &RunReport, kind: EventKind) -> u64 {
    report
        .events
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| e.count)
        .sum()
}

#[test]
fn metrics_on_and_off_produce_byte_identical_studies() {
    let mut on = faulted_config(9001, 77, 1.0);
    on.collect_metrics = true;
    let mut off = faulted_config(9001, 77, 1.0);
    off.collect_metrics = false;
    let a = Study::run(on);
    let b = Study::run(off);

    assert!(a.run_report.is_some(), "metrics on must produce a report");
    assert!(b.run_report.is_none(), "metrics off must skip the report");

    // Every artifact the study publishes, rendered to bytes.
    assert_eq!(render_summary(&a), render_summary(&b));
    assert_eq!(
        render_reused_list(&reused_address_list(&a)),
        render_reused_list(&reused_address_list(&b))
    );
    assert_eq!(render_experiments_md(&a), render_experiments_md(&b));

    // And the raw substrate outputs behind them.
    assert_eq!(a.blocklists.listings, b.blocklists.listings);
    assert_eq!(a.crawl_totals(), b.crawl_totals());
    assert_eq!(a.atlas.dynamic_prefixes, b.atlas.dynamic_prefixes);
    assert_eq!(a.census.dynamic_blocks, b.census.dynamic_blocks);
    assert_eq!(a.health.entries(), b.health.entries());
}

#[test]
fn run_report_is_deterministic_across_thread_counts() {
    let run = |threads: usize| {
        let mut config = faulted_config(9002, 88, 1.0);
        config.threads = Some(threads);
        let study = Study::run(config);
        let mut report = study.run_report.expect("report collected");
        report.strip_timings();
        report
    };
    let serial = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(
            serial,
            run(threads),
            "non-timing RunReport fields must not depend on thread count \
             (drifted at {threads} threads)"
        );
    }
}

#[test]
fn faulted_run_emits_events_matching_the_plan() {
    // Seeds proven (by the fault-injection suite) to schedule outages, feed
    // damage and bursty loss that the resilient retry policy rides out.
    let study = Study::run(faulted_config(2079, 31337, 1.0));
    let plan = study.fault_plan.as_ref().expect("plan built");
    let report = study.run_report.as_ref().expect("report collected");
    let summary = plan.summary();

    // Feed damage: one missed-day event count per scheduled missed day.
    assert_eq!(
        event_total(report, EventKind::FeedDayMissed),
        summary.feed_missed_days as u64
    );

    // Every scheduled blackout is entered and exited exactly once.
    assert_eq!(
        event_total(report, EventKind::AsBlackoutEntered),
        summary.blackouts as u64
    );
    assert_eq!(
        event_total(report, EventKind::AsBlackoutExited),
        summary.blackouts as u64
    );

    // Outages intersecting the crawl windows were survived: each one pairs a
    // checkpoint write with a resume, and the counters agree with the events.
    assert!(plan.has_outages(), "intensity 1.0 must schedule outages");
    let resumed = event_total(report, EventKind::CheckpointResumed);
    assert!(resumed >= 1, "no checkpoint/resume events recorded");
    assert_eq!(event_total(report, EventKind::CheckpointWritten), resumed);
    assert_eq!(report.counters["crawler.checkpoints_resumed"], resumed);

    // The resilient policy re-sent pings under bursty loss.
    assert!(event_total(report, EventKind::RetryFired) >= 1);
    assert_eq!(
        event_total(report, EventKind::RetryFired),
        report.counters["crawler.ping_retries"]
    );

    // Degraded phases carry the triggering reason into the report's health
    // map, mirrored by phase-degraded events.
    assert!(report
        .health
        .values()
        .any(|h| h.status == "degraded" && !h.reason.is_empty()));
    assert!(event_total(report, EventKind::PhaseDegraded) >= 1);
    assert_eq!(
        report
            .health
            .values()
            .filter(|h| h.status == "degraded")
            .count() as u64,
        event_total(report, EventKind::PhaseDegraded)
    );

    // Fault-class drop counters from the transport made it through.
    assert!(report.counters.contains_key("dht.dropped_total"));
}

#[test]
fn zero_intensity_run_emits_no_events() {
    let mut config = StudyConfig::quick_test(Seed(2077));
    config.threads = Some(1);
    config.faults = Some(FaultSpec::new(Seed(99), 0.0));
    let study = Study::run(config);
    let report = study.run_report.as_ref().expect("report collected");

    assert!(
        report.events.is_empty(),
        "clean run must emit no events: {:?}",
        report.events
    );
    assert_eq!(report.total_events(), 0);
    assert!(report.event_counts.is_empty());

    // The rest of the report is still populated.
    assert!(report.counters["crawler.pings_sent"] > 0);
    assert!(report.counters["blocklists.listings"] > 0);
    assert!(report.counters["census.blocks_surveyed"] > 0);
    assert!(report.spans.iter().any(|s| s.path == "study"));
    assert!(report.spans.iter().any(|s| s.path == "study/blocklists"));
    assert!(report
        .health
        .values()
        .all(|h| h.status == "ok" && h.reason.is_empty()));
}
