//! §6 operator workflows, end to end on one campaign: scorecard →
//! greylist split → pre-assignment hygiene, all mutually consistent.

use address_reuse::{
    churn, clean_addresses, render_scorecard, reused_address_list, scorecard, split_feed, Action,
    GreylistPolicy, ReuseEvidence, Study, StudyConfig,
};
use ar_simnet::malice::MaliceCategory;
use ar_simnet::rng::Seed;
use ar_simnet::time::SimDuration;
use std::sync::OnceLock;

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::quick_test(Seed(1234))))
}

#[test]
fn greylist_split_is_consistent_with_the_published_list() {
    let s = study();
    let reused = reused_address_list(s);
    let reused_ips: std::collections::HashSet<_> = reused.iter().map(|e| e.ip).collect();
    let policy = GreylistPolicy::default();

    let mut any_grey = false;
    for meta in &s.blocklists.catalog {
        let members = s.blocklists.ips_of_list(meta.id);
        if members.is_empty() {
            continue;
        }
        let split = split_feed(&policy, meta, members.iter(), &reused);
        // Partition: every member lands in exactly one side.
        assert_eq!(split.block.len() + split.greylist.len(), members.len());
        // Greylisted entries are reused; DDoS feeds never greylist.
        for ip in &split.greylist {
            assert!(reused_ips.contains(ip), "{ip} greylisted but not reused");
            assert_ne!(meta.category, MaliceCategory::Ddos);
        }
        any_grey |= !split.greylist.is_empty();
    }
    assert!(any_grey, "some feed must carry reused entries");
}

#[test]
fn scorecard_reused_share_matches_split_share() {
    let s = study();
    let reused = reused_address_list(s);
    let policy = GreylistPolicy::default();
    let scores = scorecard(s);
    for score in scores.iter().filter(|sc| sc.size > 0).take(20) {
        let meta = s.blocklists.meta(score.list);
        if meta.category == MaliceCategory::Ddos {
            continue; // block-everything feeds split differently by design
        }
        let split = split_feed(&policy, meta, s.blocklists.ips_of_list(score.list), &reused);
        let diff = (split.greylist_share() - score.reused_share).abs();
        assert!(
            diff < 1e-9,
            "{}: split {:.3} vs scorecard {:.3}",
            meta.name,
            split.greylist_share(),
            score.reused_share
        );
    }
    // Rendering works on the real data.
    assert!(!render_scorecard(&scores, 5).is_empty());
}

#[test]
fn preassignment_blocks_exactly_the_active_listings() {
    let s = study();
    let t = s.config.periods[0].start + SimDuration::from_days(7);
    let sample: Vec<_> = s.blocklists.all_ips().into_iter().take(200).collect();
    let (clean, parked) = clean_addresses(&s.blocklists, sample.iter().copied(), t);
    assert_eq!(clean.len() + parked.len(), sample.len());
    for a in &parked {
        // Every parked address really is listed right now.
        assert!(s
            .blocklists
            .listings_of_ip(a.ip)
            .iter()
            .any(|l| l.active_at(t)));
        // And the expiry is in the future.
        assert!(a.tainted_until.expect("parked is tainted") > t);
    }
    for ip in &clean {
        assert!(!s
            .blocklists
            .listings_of_ip(*ip)
            .iter()
            .any(|l| l.active_at(t)));
    }
}

#[test]
fn churn_reused_share_is_bounded_by_policy_effect() {
    let s = study();
    let series = churn(s);
    let share = series.reused_addition_share();
    // The share of daily blocking decisions hitting reused space is the
    // operational cost §6 argues about: it must be nonzero and a minority.
    assert!(share > 0.0 && share < 0.5, "reused addition share {share}");
}

#[test]
fn action_for_agrees_with_evidence_kinds() {
    let s = study();
    let reused = reused_address_list(s);
    let policy = GreylistPolicy::default();
    let spam_meta = s
        .blocklists
        .catalog
        .iter()
        .find(|m| m.category == MaliceCategory::Spam)
        .unwrap();
    for entry in reused.iter().take(50) {
        let action = address_reuse::action_for(&policy, spam_meta, Some(entry));
        match entry.evidence {
            ReuseEvidence::Natted { users } if users >= 2 => {
                assert_eq!(action, Action::Greylist)
            }
            ReuseEvidence::DynamicPrefix => assert_eq!(action, Action::Greylist),
            _ => {}
        }
    }
}
