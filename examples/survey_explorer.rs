//! Explore the §6 operator survey: the instrument, the respondent pool,
//! Table 1, and Figure 9.
//!
//! ```sh
//! cargo run --example survey_explorer
//! ```

use ar_simnet::Seed;
use ar_survey::{
    figure9, generate_respondents, render_questionnaire, render_table1, table1, NetworkType,
    SurveyTargets,
};

fn main() {
    // The Appendix C instrument, as circulated to the operator lists.
    let instrument = render_questionnaire();
    println!(
        "{}",
        instrument.lines().take(8).collect::<Vec<_>>().join("\n")
    );
    println!("… ({} items total)\n", instrument.lines().count() - 2);

    let pool = generate_respondents(Seed(65), &SurveyTargets::default());

    // Respondent demographics (Q6/Q7).
    println!("respondent pool ({}):", pool.len());
    for kind in NetworkType::ALL {
        let n = pool.iter().filter(|r| r.network_type == kind).count();
        println!("  {kind:?}: {n}");
    }
    let big = pool.iter().filter(|r| r.subscribers >= 1_000_000).count();
    println!("  ≥1M subscribers: {big}\n");

    // Table 1.
    println!("{}", render_table1(&table1(&pool)));

    // Figure 9.
    println!("blocklist types among reuse-affected operators (Figure 9):");
    for bar in figure9(&pool) {
        let width = (bar.pct / 2.0).round() as usize;
        println!(
            "  {:<12} {:>5.1}% {}",
            bar.list_type.name(),
            bar.pct,
            "█".repeat(width)
        );
    }
}
