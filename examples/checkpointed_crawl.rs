//! Long-crawl operations: checkpoint a crawl to disk mid-window, restart,
//! and resume to an identical result — plus the bounded message log the
//! paper describes ("the crawler logs all the messages sent and all the
//! messages received with the timestamps").
//!
//! ```sh
//! cargo run --release --example checkpointed_crawl
//! ```

use ar_crawler::{crawl, crawl_until, resume, CrawlCheckpoint, CrawlConfig};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::{date, TimeWindow};
use ar_simnet::{Seed, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(Seed(11), &UniverseConfig::tiny());
    let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 10));
    let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);

    let mut config = CrawlConfig::new(window);
    config.log_head = 5;
    config.log_tail = 5;

    // Reference: one uninterrupted run.
    let full = {
        let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
        crawl(&mut net, &config)
    };

    // Operational run: crawl three days, checkpoint to disk, "restart",
    // resume to the end.
    let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());
    let checkpoint = crawl_until(&mut net, &config, date(2019, 8, 6));
    let path = std::env::temp_dir().join("ar-crawl-checkpoint.json");
    std::fs::write(
        &path,
        serde_json::to_vec(&checkpoint).expect("checkpoint serialises"),
    )
    .expect("write checkpoint");
    println!(
        "checkpointed at {} ({} bytes, {} IPs observed so far)",
        checkpoint.resume_at,
        std::fs::metadata(&path).unwrap().len(),
        checkpoint_stats_ips(&path),
    );

    let restored: CrawlCheckpoint =
        serde_json::from_slice(&std::fs::read(&path).unwrap()).expect("checkpoint parses");
    let resumed = resume(&mut net, &config, restored);

    println!(
        "\n                 {:>14} {:>14}",
        "uninterrupted", "resumed"
    );
    println!(
        "unique IPs       {:>14} {:>14}",
        full.stats.unique_ips, resumed.stats.unique_ips
    );
    println!(
        "pings sent       {:>14} {:>14}",
        full.stats.pings_sent, resumed.stats.pings_sent
    );
    println!(
        "NATed verdicts   {:>14} {:>14}",
        full.stats.natted_ips, resumed.stats.natted_ips
    );
    assert_eq!(full.stats.unique_ips, resumed.stats.unique_ips);
    assert_eq!(full.stats.natted_ips, resumed.stats.natted_ips);
    println!("\nresumed crawl is bit-identical to the uninterrupted one ✓");

    // The message log (paper §3.1): bounded retention, exact counters.
    println!(
        "\nmessage log: {} total ({} sent / {} received), {} records retained{}",
        resumed.log.total,
        resumed.log.sent,
        resumed.log.received,
        resumed.log.retained(),
        if resumed.log.truncated() {
            " (truncated)"
        } else {
            ""
        }
    );
    for record in resumed.log.records().take(5) {
        println!("  {:?}", record);
    }
    let _ = std::fs::remove_file(&path);
}

fn checkpoint_stats_ips(path: &std::path::Path) -> usize {
    // Demonstrate that the checkpoint is plain JSON an operator can poke at.
    let value: serde_json::Value =
        serde_json::from_slice(&std::fs::read(path).unwrap()).expect("valid json");
    value["observations"]
        .as_object()
        .map(|m| m.len())
        .unwrap_or(0)
}
