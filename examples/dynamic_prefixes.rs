//! Dynamic-prefix detection: run the §3.2 RIPE-Atlas pipeline stage by
//! stage and audit the result against ground truth.
//!
//! ```sh
//! cargo run --release --example dynamic_prefixes
//! ```

use ar_atlas::{detect_dynamic, generate_fleet, PipelineConfig};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::ATLAS_WINDOW;
use ar_simnet::{Seed, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(Seed(7), &UniverseConfig::small());
    let alloc = AllocationPlan::build(&universe, ATLAS_WINDOW, InterestSet::ProbesOnly);
    let (probes, log) = generate_fleet(&universe, &alloc, ATLAS_WINDOW);
    println!(
        "simulated {} probes over {} days ({} log entries)",
        probes.len(),
        ATLAS_WINDOW.days(),
        log.entries.len()
    );

    let d = detect_dynamic(&log, &PipelineConfig::default(), |ip| universe.asn_of(ip));

    println!("\npipeline funnel (probes / covered /24s):");
    println!(
        "  all probes        {:>6} / {:>6}",
        d.all.probes.len(),
        d.all.prefixes.len()
    );
    println!(
        "  same-AS           {:>6} / {:>6}",
        d.same_as.probes.len(),
        d.same_as.prefixes.len()
    );
    println!(
        "  ≥ knee ({:>3})      {:>6} / {:>6}",
        d.knee,
        d.frequent.probes.len(),
        d.frequent.prefixes.len()
    );
    println!(
        "  daily changers    {:>6} / {:>6}",
        d.daily.probes.len(),
        d.daily.prefixes.len()
    );

    // Audit against ground truth.
    let truth_any = universe.true_dynamic_prefixes(false);
    let truth_fast = universe.true_dynamic_prefixes(true);
    let mut hits_fast = 0;
    let mut hits_slow = 0;
    let mut misses = 0;
    for p in &d.dynamic_prefixes {
        if truth_fast.contains(p) {
            hits_fast += 1;
        } else if truth_any.contains(p) {
            hits_slow += 1;
        } else {
            misses += 1;
        }
    }
    println!(
        "\ndetected {} dynamic /24s: {} are ≤1-day pools, {} slower pools, {} not pools at all",
        d.dynamic_prefixes.len(),
        hits_fast,
        hits_slow,
        misses
    );
    println!(
        "ground truth holds {} fast pools — detection is a lower bound ({}× under), exactly\n\
         as §3.2's limitations section predicts: only prefixes hosting a probe are findable.",
        truth_fast.len(),
        truth_fast.len() / d.dynamic_prefixes.len().max(1)
    );

    println!("\nfirst detected prefixes:");
    for p in d.dynamic_prefixes.iter().take(8) {
        println!("  {p}");
    }
}
