//! Feed round-trip: render simulated blocklist snapshots in the real
//! on-disk formats (plain, CIDR, DShield) and ingest them back — proving
//! the pipeline can consume genuine feed files.
//!
//! ```sh
//! cargo run --release --example live_feeds
//! ```

use ar_blocklists::{
    build_catalog, generate_dataset, parse_dshield, parse_plain, render_dshield, render_plain,
    FeedEntry, ListId,
};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::ip::Prefix24;
use ar_simnet::time::{date, SimDuration, TimeWindow};
use ar_simnet::{Seed, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(Seed(5), &UniverseConfig::tiny());
    let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 17));
    let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);
    let dataset = generate_dataset(&universe, &[(window, &alloc)], build_catalog());

    // Pick the busiest list and a snapshot instant.
    let (list, _) = dataset
        .listings_per_list()
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .expect("dataset has listings");
    let t = window.start + SimDuration::from_days(7);
    let members: Vec<_> = dataset.members_at(list, t).into_iter().collect();
    let name = &dataset.meta(list).name;
    println!("snapshot of {name:?} at day 7: {} addresses", members.len());

    // Plain format round-trip.
    let plain = render_plain(name, &members);
    let parsed = parse_plain(&plain).expect("own rendering parses");
    assert_eq!(parsed.len(), members.len());
    println!("\nplain format head:");
    for line in plain.lines().take(6) {
        println!("  {line}");
    }

    // DShield format: aggregate to /24 ranges like the real feed.
    let mut prefixes: Vec<Prefix24> = members.iter().map(|ip| Prefix24::of(*ip)).collect();
    prefixes.sort();
    prefixes.dedup();
    let ranges: Vec<FeedEntry> = prefixes
        .iter()
        .map(|p| FeedEntry::Range(p.host(0), p.host(255)))
        .collect();
    let dshield = render_dshield(name, &ranges);
    let back = parse_dshield(&dshield).expect("own rendering parses");
    assert_eq!(back.len(), ranges.len());
    println!("\ndshield format head:");
    for line in dshield.lines().take(6) {
        println!("  {line}");
    }

    // Cross-check: every member is covered by the aggregated ranges.
    let covered = members
        .iter()
        .all(|ip| back.iter().any(|e| e.contains(*ip)));
    println!(
        "\nall {} members covered by the /24 aggregation: {covered}",
        members.len()
    );
    let total_cover: u64 = back.iter().map(FeedEntry::size).sum();
    println!(
        "…at the cost of covering {total_cover} addresses — the very collateral blocking the\n\
         paper quantifies when operators block aggregated feeds.",
    );
    let _ = ListId(0);
}
