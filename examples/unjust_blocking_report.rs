//! Produce the §6 operator artifact: the public reused-address list, plus
//! per-list guidance on how badly each blocklist would overblock.
//!
//! ```sh
//! cargo run --release --example unjust_blocking_report
//! ```

use address_reuse::{
    dynamic_per_list, natted_per_list, render_reused_list, reused_address_list, Study, StudyConfig,
};
use ar_simnet::Seed;

fn main() {
    let study = Study::run(StudyConfig::quick_test(Seed(99)));

    // The machine-readable artifact (what the paper published at
    // steel.isi.edu): ip TAB evidence TAB list-count.
    let entries = reused_address_list(&study);
    let rendered = render_reused_list(&entries);
    std::fs::write("reused_addresses.txt", &rendered).expect("write artifact");
    println!(
        "wrote reused_addresses.txt ({} entries); head:\n",
        entries.len()
    );
    for line in rendered.lines().take(8) {
        println!("  {line}");
    }

    // Operator guidance per list: how much of each feed is reused space.
    let nat = natted_per_list(&study);
    let dynamic = dynamic_per_list(&study);
    let dyn_by_list: std::collections::HashMap<_, _> = dynamic.counts.iter().copied().collect();

    println!("\nworst feeds by reused-address exposure:");
    println!(
        "{:<34} {:>8} {:>8} {:>10} {:>22}",
        "list", "natted", "dynamic", "feed size", "suggested handling"
    );
    let mut shown = 0;
    for (list, nat_count) in &nat.counts {
        let dyn_count = dyn_by_list.get(list).copied().unwrap_or(0);
        if nat_count + dyn_count == 0 {
            continue;
        }
        let meta = study.blocklists.meta(*list);
        let size = study.blocklists.ips_of_list(*list).len();
        let reused_share = f64::from(nat_count + dyn_count) / size.max(1) as f64;
        // §6: DDoS feeds can afford collateral blocking; spam/application
        // feeds should greylist reused entries instead.
        let advice = if matches!(meta.category, ar_simnet::MaliceCategory::Ddos) {
            "block (volumetric)"
        } else if reused_share > 0.05 {
            "greylist reused entries"
        } else {
            "block + monitor"
        };
        println!(
            "{:<34} {:>8} {:>8} {:>10} {:>22}",
            meta.name, nat_count, dyn_count, size, advice
        );
        shown += 1;
        if shown >= 12 {
            break;
        }
    }
}
