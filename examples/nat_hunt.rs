//! NAT hunting: drive the §3.1 crawler directly and audit its verdicts
//! against the simulator's ground truth — the validation the original
//! study could not perform on the live Internet.
//!
//! ```sh
//! cargo run --release --example nat_hunt
//! ```

use ar_crawler::{crawl, CrawlConfig, IpClass};
use ar_dht::{SimNetwork, SimParams};
use ar_simnet::alloc::{AllocationPlan, InterestSet};
use ar_simnet::time::{date, TimeWindow};
use ar_simnet::{Seed, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(Seed(42), &UniverseConfig::small());
    let window = TimeWindow::new(date(2019, 8, 3), date(2019, 8, 17));
    let alloc = AllocationPlan::build(&universe, window, InterestSet::Observable);
    let mut net = SimNetwork::new(&universe, &alloc, SimParams::default());

    println!(
        "crawling {} BitTorrent hosts for {} days…",
        universe.bittorrent_hosts().count(),
        window.days()
    );
    let report = crawl(&mut net, &CrawlConfig::new(window));
    let s = &report.stats;
    println!(
        "sent {} get_nodes + {} bt_pings, {:.1}% answered; {} unique IPs, {} node_ids\n",
        s.get_nodes_sent,
        s.pings_sent,
        100.0 * s.response_rate(),
        s.unique_ips,
        s.unique_node_ids
    );

    // Audit every verdict.
    let mut true_pos = 0u32;
    let mut false_pos = 0u32;
    let mut sample = Vec::new();
    for ip in report.natted_ips() {
        let bound = report.user_lower_bound(ip).expect("natted has evidence");
        match universe.true_nat_user_count(ip) {
            Some(truth) if truth >= 2 => {
                true_pos += 1;
                if sample.len() < 8 {
                    sample.push((ip, bound, truth));
                }
            }
            other => {
                false_pos += 1;
                eprintln!("FALSE POSITIVE {ip}: detected NAT, ground truth {other:?}");
            }
        }
    }
    println!("NAT verdicts: {true_pos} correct, {false_pos} wrong");
    println!("\n  ip                 detected ≥   actual users");
    for (ip, bound, truth) in sample {
        println!("  {ip:<18} {bound:>10} {truth:>14}");
    }

    // The Figure-1 story: multiport IPs that were NOT confirmed.
    let churners = report
        .observations
        .iter()
        .filter(|(_, o)| o.class() == IpClass::MultiPortUnconfirmed)
        .count();
    println!(
        "\n{} IPs showed multiple ports but never two simultaneous users — port churn the\n\
         bt_ping round correctly refused to call NAT (the paper's Figure 1, IP1 case).",
        churners
    );
}
