//! Quickstart: run a scaled-down version of the paper's whole measurement
//! campaign and print its headline findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use address_reuse::{
    durations, funnel, impact, render_summary, reused_address_list, Study, StudyConfig,
};
use ar_simnet::Seed;

fn main() {
    // A quick-test study: tiny synthetic Internet, one-week windows.
    // Swap in `StudyConfig::paper(seed, UniverseConfig::at_scale(2000))`
    // for the full two-period campaign the figures use.
    let study = Study::run(StudyConfig::quick_test(Seed(1)));

    println!("{}", render_summary(&study));

    let f = funnel(&study);
    println!(
        "Of {} blocklisted addresses, {} are NATed (shared by several users right now)\n\
         and {} sit in dynamically reallocated /24s (someone else will hold them tomorrow).",
        f.blocklisted_total, f.natted_blocklisted, f.blocklisted_daily,
    );

    let d = durations(&study).summary();
    println!(
        "A dynamic address stays listed {:.1} days on average — its next (innocent) holder\n\
         inherits the tail of that listing.",
        d.mean_days_dynamic
    );

    let i = impact(&study).summary();
    println!(
        "Blocklisting the NATed addresses punishes at least {} bystander users; one gateway\n\
         had {} users detected behind it.",
        i.total_affected_users, i.max_users
    );

    let list = reused_address_list(&study);
    println!(
        "\nThe §6 artifact — the reused-address greylist an operator would consume — holds\n\
         {} entries; first three:",
        list.len()
    );
    for entry in list.iter().take(3) {
        println!("  {:?}", entry);
    }
}
