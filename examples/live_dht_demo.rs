//! Real datagrams: spin up a small Mainline-DHT swarm on loopback UDP and
//! walk it with genuine KRPC messages — the same codec the simulated crawl
//! uses, over actual sockets.
//!
//! ```sh
//! cargo run --example live_dht_demo
//! ```

use ar_dht::udp::{query_once, DhtNode};
use ar_dht::{Message, MessageBody, NodeId, Query};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let mut rng = SmallRng::seed_from_u64(2020);
    let bind = "127.0.0.1:0".parse().unwrap();

    // A nine-node swarm; each node learns its two successors.
    let nodes: Vec<DhtNode> = (0..9)
        .map(|_| DhtNode::spawn(NodeId::random(&mut rng), bind))
        .collect::<Result<_, _>>()?;
    for i in 0..nodes.len() {
        for step in 1..=2 {
            let peer = &nodes[(i + step) % nodes.len()];
            nodes[i].add_contact(peer.id(), peer.addr());
        }
    }
    println!("spawned {} DHT nodes on loopback:", nodes.len());
    for n in &nodes {
        println!("  {} @ {}", n.id(), n.addr());
    }

    // Ping the first node.
    let my_id = NodeId::random(&mut rng);
    let pong = query_once(
        nodes[0].addr(),
        &Message::query(b"p1", Query::Ping { id: my_id }),
        Duration::from_secs(2),
    )?;
    println!("\nping {} -> {:?}", nodes[0].addr(), pong.body);

    // Iterative find_node toward the last node's id, starting from node 0 —
    // the same message exchange the crawler's discovery phase performs.
    let target = nodes.last().unwrap().id();
    let mut frontier = vec![nodes[0].addr()];
    let mut visited = std::collections::HashSet::new();
    let mut hops = 0;
    'walk: while let Some(addr) = frontier.pop() {
        if !visited.insert(addr) {
            continue;
        }
        hops += 1;
        // Dead contacts are normal in a DHT (here: our own closed ping
        // socket, which node 0 learned as a contact) — skip them like any
        // crawler does.
        let Ok(reply) = query_once(
            addr,
            &Message::query(b"fn", Query::FindNode { id: my_id, target }),
            Duration::from_millis(500),
        ) else {
            continue;
        };
        if let MessageBody::Response(r) = reply.body {
            for info in r.nodes.unwrap_or_default() {
                if info.id == target {
                    println!("found target {target} at {} after {hops} hops", info.addr);
                    break 'walk;
                }
                frontier.push(info.addr);
            }
        }
    }

    let served: u64 = nodes.iter().map(|n| n.queries_served()).sum();
    println!("swarm served {served} genuine UDP queries");
    for n in nodes {
        n.shutdown();
    }
    Ok(())
}
